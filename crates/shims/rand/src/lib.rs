//! Offline stand-in for the parts of the `rand` 0.9 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this shim provides
//! a source-compatible subset of `rand`: the [`Rng`] / [`RngExt`] /
//! [`SeedableRng`] traits, the [`rngs::StdRng`] generator (xoshiro256++
//! seeded through SplitMix64 — *not* the upstream ChaCha12, so streams
//! differ from real `rand`, but they are deterministic, portable, and of
//! high statistical quality), uniform range sampling, and the slice helpers
//! [`seq::SliceRandom`] and [`seq::IndexedRandom`].
//!
//! Everything here is deterministic given a seed; nothing reads OS entropy.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the only required operation is producing the
/// next 64 uniformly random bits. Range sampling and friends are provided
/// methods, so generic code bounded on `Rng + ?Sized` gets the full
/// surface.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// Supports `Range` over the common integer types and `f32`/`f64`, and
    /// `RangeInclusive` over integers.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension alias kept for source compatibility with code written against
/// `rand` versions that split convenience methods into an extension trait.
/// All methods live on [`Rng`] here, so this trait is empty; the blanket
/// impl makes `use rand::RngExt` a harmless no-op import.
pub trait RngExt: Rng {}
impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// — the standard way this workspace derives reproducible streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                // Kept a hard assert (upstream rand panics here too): the
                // branch is perfectly predicted and an empty range must
                // not silently fabricate an in-range value.
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Widening-multiply range reduction; bias is ≤ 2⁻⁶⁴ per draw.
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let out = self.start + (self.end - self.start) * u;
                // Narrowing u (f32) or the fma rounding can land exactly on
                // `end`; keep the half-open contract.
                if out < self.end {
                    out
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; this shim substitutes
    /// xoshiro256++ (Blackman & Vigna), which passes BigCrush and is more
    /// than adequate for bootstrap resampling and simulation noise. Streams
    /// therefore differ numerically from upstream `rand`, but all
    /// reproducibility guarantees (same seed → same stream) hold.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a stream
        /// mid-flight (`relperf-service`'s snapshot codec). Restoring the
        /// returned words with [`StdRng::from_state`] resumes the exact
        /// draw sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`], continuing its stream exactly.
        ///
        /// # Panics
        /// Panics on the all-zero state: xoshiro can never reach it from a
        /// seeded generator, so it only appears in corrupted checkpoints.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s != [0, 0, 0, 0],
                "the all-zero xoshiro state is unreachable from any seed"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    /// Uniform random access into indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// The commonly imported surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
        }
        // All values of a small range are hit.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo_half), "severely skewed: {lo_half}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_is_none_on_empty_and_in_collection() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: Vec<u8> = vec![];
        assert!(empty.choose(&mut rng).is_none());
        let v = vec![10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..32 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.random_range(0u8..=2) {
                0 => lo = true,
                2 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }
}
