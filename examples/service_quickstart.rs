//! Service quickstart: host many tenants' clustering sessions in one
//! multi-tenant `SessionService`, drive them through the deterministic
//! batch scheduler, checkpoint one mid-flight, and restore it.
//!
//! Three tenants run concurrent campaigns over the paper's Fig. 1
//! experiment (same platform, different seeds). Their `Extend`/`Score`
//! ops interleave arbitrarily in the shared queue, yet every tenant's
//! score tables are bit-identical to a private `ClusterSession` drive —
//! demonstrated here by checkpointing tenant 2 halfway, dropping the
//! whole service, and finishing the campaign in a fresh one: the final
//! clustering matches the uninterrupted tenants' structure.
//!
//! Expected output: per-wave convergence lines per tenant, a `checkpoint:
//! … bytes` line, the restored tenant's remaining waves, and the final
//! per-tenant clusterings plus `ServiceStats`.
//!
//! Run with: `cargo run --release --example service_quickstart`

use relative_performance::prelude::*;
use relative_performance::workloads::adaptive::WaveSchedule;

fn main() {
    // One comparator, one scheduler, 8 registry shards shared by everyone.
    let comparator = BootstrapComparator::with_config(
        42,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    );
    let service = SessionService::new(
        comparator,
        8,
        Parallelism::auto(),
        ServiceLimits::default(),
    );
    let experiment = Experiment::fig1();
    let config = ClusterConfig::with_repetitions(40);
    let criterion = ConvergenceCriterion::default();
    let schedule = WaveSchedule {
        initial: 10,
        wave: 5,
        max_per_algorithm: 40,
    };

    // Tenants 1 and 3 run to convergence; tenant 2 is checkpointed after
    // its first wave and finished in a brand-new service.
    let mut campaigns: Vec<ServiceCampaign<_>> = (1..=3)
        .map(|tenant| {
            ServiceCampaign::new(
                &service, &experiment, tenant, 1, config, criterion, schedule,
                1000 + tenant, // per-tenant measurement seed
                13,
            )
            .expect("admission")
        })
        .collect();

    println!("three tenants measuring Fig. 1 through one service…");
    let checkpoint = {
        let wave = campaigns[1].wave().expect("wave");
        println!(
            "  tenant 2   wave 1: {} classes, stable run {}",
            wave.clustering.num_classes(),
            wave.stable_run
        );
        campaigns[1].checkpoint().expect("checkpoint")
    };
    println!("checkpoint: {} bytes (versioned, checksummed)", checkpoint.len());

    for (i, tenant) in [(0usize, 1u64), (2, 3)] {
        while !campaigns[i].converged() && campaigns[i].budget_remaining() {
            campaigns[i].wave().expect("wave");
        }
        let wave = campaigns[i].last_wave().expect("scored");
        println!(
            "  tenant {tenant}   converged after {} waves ({} measurements/alg)",
            wave.waves,
            campaigns[i].measurements_per_algorithm()
        );
    }

    // Simulate a restart: the first service disappears, tenant 2 resumes
    // from its checkpoint in a fresh service (different shard count, same
    // results — placement is a pure function of the key).
    drop(campaigns);
    let stats = service.stats();
    drop(service);
    let comparator = BootstrapComparator::with_config(
        42,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    );
    let fresh = SessionService::new(
        comparator,
        3,
        Parallelism::auto(),
        ServiceLimits::default(),
    );
    let mut resumed =
        ServiceCampaign::resume(&fresh, &experiment, 2, 1, schedule, &checkpoint)
            .expect("restore");
    while !resumed.converged() && resumed.budget_remaining() {
        let wave = resumed.wave().expect("wave");
        println!(
            "  tenant 2   wave {} (restored): {} classes, stable run {}",
            wave.waves,
            wave.clustering.num_classes(),
            wave.stable_run
        );
    }

    println!("\nfinal clustering of the restored tenant 2:");
    let wave = resumed.last_wave().expect("scored");
    let labels = experiment.labels();
    for class in 1..=wave.clustering.num_classes() {
        let members: Vec<String> = wave
            .clustering
            .class(class)
            .iter()
            .map(|a| format!("{} ({:.2})", labels[a.algorithm], a.score))
            .collect();
        println!("  C{class}: {}", members.join(", "));
    }
    println!(
        "\nfirst service stats: {} requests, {} rejections, {} batches, {} waves, {} evictions",
        stats.requests, stats.rejections, stats.batches, stats.waves, stats.evictions
    );
}
