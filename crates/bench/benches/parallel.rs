//! B5 — Serial vs. parallel execution of the clustering hot path.
//!
//! Three comparisons, all on the Table I experiment:
//!
//! * `relative_scores/{serial,parallel}` — Procedure 4's repetition loop
//!   through `relative_scores_seeded`, one thread vs. all cores. The
//!   acceptance target is ≥ 2× with ≥ 4 threads on a multi-core host
//!   (the two configurations are bit-identical by construction, which
//!   the assert below re-checks before timing).
//! * `compare_batch/{serial,parallel}` — the batched bootstrap comparator
//!   over all p(p-1)/2 sample pairs.
//! * `procedure4/{uncached,cached}` — the legacy rng-threaded
//!   `relative_scores` vs. the memoizing engine at equal thread count
//!   (1), isolating the `ComparisonCache` win from the threading win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relperf_core::cluster::{
    relative_scores, relative_scores_seeded, ClusterConfig, PairSchedule, Parallelism,
};
use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
use relperf_measure::{Sample, SeededThreeWayComparator, ThreeWayComparator};
use relperf_workloads::experiment::{
    cluster_measurements_seeded, measure_all_seeded, Experiment, MeasuredAlgorithm,
};
use std::hint::black_box;

const SEED: u64 = 1234;

fn measured() -> Vec<MeasuredAlgorithm> {
    let exp = Experiment::table1(2);
    measure_all_seeded(&exp, 30, SEED, Parallelism::auto())
}

fn comparator() -> BootstrapComparator {
    BootstrapComparator::with_config(
        SEED,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    )
}

fn cluster_config(repetitions: usize, parallelism: Parallelism) -> ClusterConfig {
    ClusterConfig {
        repetitions,
        parallelism,
        ..Default::default()
    }
}

fn bench_relative_scores(c: &mut Criterion) {
    let measured = measured();
    let cmp = comparator();

    // Sanity first: identical tables whatever the parallelism.
    let serial = cluster_measurements_seeded(
        &measured,
        &cmp,
        cluster_config(20, Parallelism::serial()),
        7,
    );
    let parallel = cluster_measurements_seeded(
        &measured,
        &cmp,
        cluster_config(20, Parallelism::auto()),
        7,
    );
    assert_eq!(serial, parallel, "parallel clustering must be bit-identical");

    // And the batched pair schedule: same table, different fan-out.
    let batched = cluster_measurements_seeded(
        &measured,
        &cmp,
        cluster_config(20, Parallelism::auto()).with_schedule(PairSchedule::Batched),
        7,
    );
    assert_eq!(serial, batched, "batched schedule must be bit-identical");

    let mut group = c.benchmark_group("relative_scores");
    for (label, par, schedule) in [
        ("serial", Parallelism::serial(), PairSchedule::OnDemand),
        ("parallel", Parallelism::auto(), PairSchedule::OnDemand),
        ("batched-pairs", Parallelism::auto(), PairSchedule::Batched),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 50), &par, |b, &par| {
            b.iter(|| {
                cluster_measurements_seeded(
                    black_box(&measured),
                    &cmp,
                    cluster_config(50, par).with_schedule(schedule),
                    7,
                )
            })
        });
    }
    group.finish();
}

fn bench_compare_batch(c: &mut Criterion) {
    let measured = measured();
    let samples: Vec<&Sample> = measured.iter().map(|m| &m.sample).collect();
    let mut pairs: Vec<(&Sample, &Sample)> = Vec::new();
    for i in 0..samples.len() {
        for j in (i + 1)..samples.len() {
            pairs.push((samples[i], samples[j]));
        }
    }

    let mut group = c.benchmark_group("compare_batch");
    for (label, par) in [
        ("serial", Parallelism::serial()),
        ("parallel", Parallelism::auto()),
    ] {
        group.bench_with_input(BenchmarkId::new(label, pairs.len()), &par, |b, &par| {
            let cmp = comparator();
            b.iter(|| cmp.compare_batch(black_box(&pairs), par))
        });
    }
    group.finish();
}

fn bench_cache_effect(c: &mut Criterion) {
    let measured = measured();
    let cmp = comparator();
    let p = measured.len();

    let mut group = c.benchmark_group("procedure4");
    group.bench_function(BenchmarkId::new("uncached", 20), |b| {
        b.iter(|| {
            use rand::prelude::*;
            let mut rng = StdRng::seed_from_u64(7);
            relative_scores(
                p,
                cluster_config(20, Parallelism::serial()),
                &mut rng,
                |x, y| cmp.compare(&measured[x].sample, &measured[y].sample),
            )
        })
    });
    group.bench_function(BenchmarkId::new("cached", 20), |b| {
        b.iter(|| {
            relative_scores_seeded(
                p,
                cluster_config(20, Parallelism::serial()),
                7,
                |stream, x, y| cmp.compare_seeded(&measured[x].sample, &measured[y].sample, stream),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_relative_scores,
    bench_compare_batch,
    bench_cache_effect
);
criterion_main!(benches);
