//! Integration tests of the extension features: multi-accelerator
//! platforms, budgeted tournament search, and execution-less prediction.

use rand::prelude::*;
use relative_performance::core::search::{tournament_search, SearchConfig};
use relative_performance::prelude::*;
use relative_performance::sim::multi::{
    enumerate_multi_placements, multi_label, AcceleratorSlot, MultiPlatform,
};
use relative_performance::workloads::scientific_code;

fn two_accel_platform() -> MultiPlatform {
    let base = presets::table1_platform();
    MultiPlatform {
        device: base.device.clone(),
        device_noise: base.device_noise.clone(),
        accelerators: vec![
            AcceleratorSlot {
                spec: base.accelerator.clone(),
                link: base.link.clone(),
                noise: base.accel_noise.clone(),
                transfer_noise: base.transfer_noise.clone(),
            },
            AcceleratorSlot {
                spec: presets::raspberry_platform().accelerator.clone(),
                link: presets::raspberry_platform().link.clone(),
                noise: presets::raspberry_platform().accel_noise.clone(),
                transfer_noise: presets::raspberry_platform().transfer_noise.clone(),
            },
        ],
        context_switch_s: base.context_switch_s,
    }
}

#[test]
fn multi_accelerator_clustering_puts_pi_placements_last() {
    let platform = two_accel_platform();
    platform.validate();
    let tasks = scientific_code::tasks(10);
    let placements = enumerate_multi_placements(3, 2);
    assert_eq!(placements.len(), 27);

    let mut rng = StdRng::seed_from_u64(41);
    let samples: Vec<(String, Sample)> = placements
        .iter()
        .map(|p| {
            (
                multi_label(p),
                platform.measure(&tasks, p, 20, &mut rng).unwrap(),
            )
        })
        .collect();

    let comparator = BootstrapComparator::new(42);
    let clustering = relative_scores(
        samples.len(),
        ClusterConfig::with_repetitions(30),
        &mut rng,
        |a, b| comparator.compare(&samples[a].1, &samples[b].1),
    )
    .final_assignment();

    // Placing the big L3 on the Raspberry-Pi-class accelerator (labels
    // ending in 'B') must always rank in the worse half.
    let mid = clustering.num_classes() / 2;
    for (i, (label, _)) in samples.iter().enumerate() {
        if label.ends_with('B') {
            assert!(
                clustering.assignment(i).rank > mid,
                "{label} ranked {} of {}",
                clustering.assignment(i).rank,
                clustering.num_classes()
            );
        }
    }
    // The single-accelerator winner DDA must stay in the best class.
    let dda = samples.iter().position(|(l, _)| l == "DDA").unwrap();
    assert_eq!(clustering.assignment(dda).rank, 1);
}

#[test]
fn tournament_search_recovers_the_exhaustive_winner() {
    // Search the 8-placement Table I space with lazy measurement and check
    // the champion matches the exhaustive clustering's top class.
    let exp = Experiment::table1(10);
    let mut rng = StdRng::seed_from_u64(43);
    let measured = measure_all(&exp, 30, &mut rng);
    let comparator = BootstrapComparator::new(44);

    let result = tournament_search(
        measured.len(),
        SearchConfig {
            round_size: 4,
            repetitions: 10,
            comparison_budget: 2_000,
        },
        &mut rng,
        |a, b| comparator.compare(&measured[a].sample, &measured[b].sample),
    );
    assert!(!result.champions.is_empty());
    let champion_labels: Vec<&str> = result
        .champions
        .iter()
        .map(|&c| measured[c].label.as_str())
        .collect();
    assert!(
        champion_labels.contains(&"DDA"),
        "search champions {champion_labels:?} must include DDA"
    );
}

#[test]
fn prediction_generalizes_to_unmeasured_placements() {
    use relative_performance::core::predict::KnnClassModel;
    use relative_performance::workloads::digital_twin::{self, MultiScaleConfig};
    use relative_performance::workloads::features::{placement_features, training_set};

    let config = MultiScaleConfig {
        stages: 5,
        base_size: 30,
        growth: 1.8,
        iters_per_stage: 3,
    };
    let exp = Experiment {
        platform: presets::table1_platform(),
        tasks: digital_twin::tasks(&config),
        placements: digital_twin::placements(&config),
    };
    let mut rng = StdRng::seed_from_u64(45);
    let measured = measure_all(&exp, 15, &mut rng);
    let comparator = MedianComparator::new(0.05);
    let clustering = cluster_measurements(
        &measured,
        &comparator,
        ClusterConfig::with_repetitions(20),
        &mut rng,
    )
    .final_assignment();

    // Train on 24 of the 32 placements; predict the held-out 8.
    let all = training_set(&exp.tasks, &measured, &clustering);
    let (train, test): (Vec<_>, Vec<_>) = all
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 4 != 0);
    let model = KnnClassModel::fit(train.into_iter().map(|(_, e)| e).collect(), 3).unwrap();

    let mut soft_hits = 0usize;
    let total = test.len();
    for (i, example) in test {
        let features = placement_features(&exp.tasks, &measured[i].placement);
        let pred = model.predict(&features).unwrap();
        if pred.abs_diff(example.class) <= 1 {
            soft_hits += 1;
        }
    }
    let rate = soft_hits as f64 / total as f64;
    assert!(
        rate >= 0.5,
        "held-out ±1-class accuracy {rate} below the useful-signal bar"
    );
}
