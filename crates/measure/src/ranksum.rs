//! Mann–Whitney U (Wilcoxon rank-sum) three-way comparator.
//!
//! A classical nonparametric alternative to the bootstrap comparator of
//! the paper's Sec. III,
//! used by the ablation experiments: two samples are "equivalent" unless
//! the rank-sum statistic rejects equality *and* the median shift exceeds
//! a practical-significance margin (a pure significance test would call
//! any microscopic-but-consistent difference "better", which is not what
//! performance classes mean).

use crate::compare::{Outcome, ThreeWayComparator};
use crate::sample::Sample;

/// Mann–Whitney U comparator with a normal approximation (appropriate for
/// the `N ≥ 20` regimes of the paper) and a relative effect-size margin.
#[derive(Debug, Clone, PartialEq)]
pub struct MannWhitneyComparator {
    /// Two-sided significance level, e.g. `0.05`.
    pub alpha: f64,
    /// Minimum relative median shift for practical significance.
    pub min_effect: f64,
}

impl MannWhitneyComparator {
    /// Creates a comparator with the given significance level and a 1%
    /// minimum effect.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0, 1)");
        MannWhitneyComparator {
            alpha,
            min_effect: 0.01,
        }
    }

    /// The standard-normal critical value for the two-sided level.
    fn z_crit(&self) -> f64 {
        // Inverse normal CDF via Acklam's rational approximation on the
        // upper tail; adequate for significance thresholds.
        inverse_normal_cdf(1.0 - self.alpha / 2.0)
    }
}

/// Computes the Mann–Whitney U statistic of `a` against `b` with average
/// ranks for ties. Returns `(u_a, n_a, n_b, tie_correction)`.
pub fn mann_whitney_u(a: &Sample, b: &Sample) -> (f64, usize, usize, f64) {
    let na = a.len();
    let nb = b.len();
    // One pass over the two sorted-run sequences via the shared chunked
    // merge cursor — O(na + nb), no pooled copy and no flat-view
    // materialization on tiered samples; tie groups carry their average
    // pooled rank, so the order within ties is irrelevant.
    let mut rank_sum_a = 0.0;
    let mut tie_term = 0.0;
    crate::merge::merge_tie_groups_chunked(a.sorted_chunks(), b.sorted_chunks(), |g| {
        rank_sum_a += g.average_rank() * g.count_a as f64;
        let count = g.count() as f64;
        tie_term += count * count * count - count;
    });
    let u_a = rank_sum_a - (na * (na + 1)) as f64 / 2.0;
    (u_a, na, nb, tie_term)
}

/// Two-sided z-statistic of the U test (0 when variance degenerates, e.g.
/// all observations tied).
pub fn mann_whitney_z(a: &Sample, b: &Sample) -> f64 {
    let (u, na, nb, tie_term) = mann_whitney_u(a, b);
    let n = (na + nb) as f64;
    let mean_u = (na * nb) as f64 / 2.0;
    let var_u = (na * nb) as f64 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        return 0.0;
    }
    (u - mean_u) / var_u.sqrt()
}

impl ThreeWayComparator for MannWhitneyComparator {
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome {
        let z = mann_whitney_z(a, b);
        let ma = a.median();
        let mb = b.median();
        let scale = ma.abs().min(mb.abs()).max(f64::MIN_POSITIVE);
        let effect = (ma - mb).abs() / scale;
        if z.abs() <= self.z_crit() || effect < self.min_effect {
            return Outcome::Equivalent;
        }
        // U_a counts pairs where a's observations exceed b's — larger U_a
        // (positive z) means a tends to be LARGER, i.e. slower.
        if z > 0.0 {
            Outcome::Worse
        } else {
            Outcome::Better
        }
    }
}

impl crate::compare::SeededThreeWayComparator for MannWhitneyComparator {
    /// Deterministic comparator: the stream id is irrelevant.
    fn compare_seeded(&self, a: &Sample, b: &Sample, _stream: u64) -> Outcome {
        self.compare(a, b)
    }
}

impl crate::compare::ScratchThreeWayComparator for MannWhitneyComparator {
    /// Deterministic and allocation-free — the pooled ranking is one
    /// merge walk over the cached sorted views.
    type Scratch = ();

    fn new_scratch(&self) {}

    fn compare_seeded_scratch(
        &self,
        (): &mut (),
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome {
        use crate::compare::SeededThreeWayComparator;
        self.compare_seeded(a, b, stream)
    }
}

/// Inverse of the standard normal CDF (Acklam's algorithm, |ε| < 1.15e-9).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn noisy(center: f64, spread: f64, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        Sample::new(
            (0..n)
                .map(|_| center + rng.random_range(-spread..spread))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn inverse_normal_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.999) - 3.090232).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn inverse_normal_rejects_bounds() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn u_statistic_known_case() {
        // a = {1,2}, b = {3,4}: every b beats every a → U_a = 0.
        let a = Sample::new(vec![1.0, 2.0]).unwrap();
        let b = Sample::new(vec![3.0, 4.0]).unwrap();
        let (u, na, nb, ties) = mann_whitney_u(&a, &b);
        assert_eq!(u, 0.0);
        assert_eq!((na, nb), (2, 2));
        assert_eq!(ties, 0.0);
        // Flipped: U_b = n_a·n_b = 4.
        let (u_b, ..) = mann_whitney_u(&b, &a);
        assert_eq!(u_b, 4.0);
    }

    #[test]
    fn ties_get_average_ranks() {
        let a = Sample::new(vec![1.0, 2.0]).unwrap();
        let b = Sample::new(vec![2.0, 3.0]).unwrap();
        let (u, .., ties) = mann_whitney_u(&a, &b);
        // ranks: 1, (2.5, 2.5), 4 → rank_sum_a = 3.5 → U_a = 0.5.
        assert_eq!(u, 0.5);
        assert!(ties > 0.0);
    }

    #[test]
    fn comparator_separated_samples() {
        let cmp = MannWhitneyComparator::new(0.05);
        let fast = noisy(1.0, 0.05, 30, 1);
        let slow = noisy(1.5, 0.05, 30, 2);
        assert_eq!(cmp.compare(&fast, &slow), Outcome::Better);
        assert_eq!(cmp.compare(&slow, &fast), Outcome::Worse);
    }

    #[test]
    fn comparator_identical_center_equivalent() {
        let cmp = MannWhitneyComparator::new(0.05);
        let a = noisy(1.0, 0.1, 30, 3);
        let b = noisy(1.0, 0.1, 30, 4);
        assert_eq!(cmp.compare(&a, &b), Outcome::Equivalent);
    }

    #[test]
    fn tiny_consistent_shift_is_practically_equivalent() {
        // A 0.2% shift is statistically detectable at N=200 but falls under
        // the practical margin.
        let a = noisy(1.000, 0.001, 200, 5);
        let b = Sample::new(a.values().iter().map(|v| v * 1.002).collect()).unwrap();
        let cmp = MannWhitneyComparator::new(0.05);
        assert_eq!(cmp.compare(&a, &b), Outcome::Equivalent);
        // Without the margin the same pair separates.
        let strict = MannWhitneyComparator {
            alpha: 0.05,
            min_effect: 0.0,
        };
        assert_eq!(strict.compare(&a, &b), Outcome::Better);
    }

    #[test]
    fn degenerate_all_tied() {
        let a = Sample::new(vec![2.0; 10]).unwrap();
        let cmp = MannWhitneyComparator::new(0.05);
        assert_eq!(cmp.compare(&a, &a), Outcome::Equivalent);
        assert_eq!(mann_whitney_z(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha in")]
    fn rejects_bad_alpha() {
        MannWhitneyComparator::new(1.5);
    }
}
