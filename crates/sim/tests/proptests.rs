//! Property-based tests of the simulator: physical sanity of timing,
//! energy, and cost under arbitrary task mixes and placements.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::prelude::*;
use relperf_sim::device::{DeviceKind, DeviceSpec};
use relperf_sim::executor::Platform;
use relperf_sim::link::LinkSpec;
use relperf_sim::noise::NoiseModel;
use relperf_sim::task::{enumerate_placements, Loc, Task};

fn quiet_platform() -> Platform {
    Platform {
        device: DeviceSpec {
            name: "d".into(),
            kind: DeviceKind::EdgeCpu,
            peak_flops: 1e9,
            mem_capacity_bytes: 1 << 30,
            mem_pressure_penalty: 2.0,
            energy_per_flop: 1e-9,
            idle_power_watts: 1.0,
            cost_per_second: 0.0,
            launch_overhead_s: 0.0,
        },
        accelerator: DeviceSpec {
            name: "a".into(),
            kind: DeviceKind::Gpu,
            peak_flops: 1e10,
            mem_capacity_bytes: 1 << 20,
            mem_pressure_penalty: 3.0,
            energy_per_flop: 5e-10,
            idle_power_watts: 2.0,
            cost_per_second: 0.1,
            launch_overhead_s: 1e-4,
        },
        link: LinkSpec {
            name: "l".into(),
            latency_s: 1e-4,
            bandwidth_bytes_per_s: 1e9,
            energy_per_byte: 1e-9,
        },
        context_switch_s: 1e-3,
        device_noise: NoiseModel::None,
        accel_noise: NoiseModel::None,
        transfer_noise: NoiseModel::None,
    }
}

#[derive(Debug, Clone)]
struct TaskSpec {
    iters: u64,
    flops: u64,
    bytes: u64,
    ws: u64,
}

fn task_strategy() -> impl Strategy<Value = TaskSpec> {
    (1u64..20, 1u64..10_000_000, 0u64..1_000_000, 0u64..(4 << 20)).prop_map(
        |(iters, flops, bytes, ws)| TaskSpec {
            iters,
            flops,
            bytes,
            ws,
        },
    )
}

fn build_tasks(specs: &[TaskSpec]) -> Vec<Task> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| Task {
            name: format!("T{i}"),
            iterations: s.iters,
            flops_per_iter: s.flops,
            offload_bytes_per_iter: s.bytes,
            return_bytes_per_iter: 8,
            working_set_bytes: s.ws,
            handoff_bytes: 8,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_placements_physically_sane(specs in vec(task_strategy(), 1..5), seed in 0u64..1_000) {
        let platform = quiet_platform();
        let tasks = build_tasks(&specs);
        let mut rng = StdRng::seed_from_u64(seed);
        for placement in enumerate_placements(tasks.len()) {
            let rec = platform.execute(&tasks, &placement, &mut rng);
            prop_assert!(rec.total_time_s > 0.0);
            prop_assert!(rec.device_busy_s >= 0.0 && rec.accel_busy_s >= 0.0);
            prop_assert!(rec.device_busy_s + rec.accel_busy_s <= rec.total_time_s + 1e-12);
            prop_assert!(rec.energy.total() >= 0.0);
            prop_assert!(rec.operating_cost >= 0.0);
            // FLOPs conserved across devices.
            let total: u64 = tasks.iter().map(|t| t.total_flops()).sum();
            prop_assert_eq!(rec.device_flops + rec.accel_flops, total);
            // Per-task times sum to the total.
            let sum: f64 = rec.per_task.iter().map(|t| t.time_s).sum();
            prop_assert!((sum - rec.total_time_s).abs() < 1e-9 * rec.total_time_s.max(1.0));
            // Device-only placements move no bytes.
            if placement.iter().all(|&l| l == Loc::Device) {
                prop_assert_eq!(rec.bytes_transferred, 0);
                prop_assert_eq!(rec.operating_cost, 0.0);
            }
        }
    }

    #[test]
    fn time_monotone_in_flops(specs in vec(task_strategy(), 1..4), scale in 2u64..10, seed in 0u64..500) {
        let platform = quiet_platform();
        let base = build_tasks(&specs);
        let mut scaled = base.clone();
        for t in &mut scaled {
            t.flops_per_iter *= scale;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for placement in enumerate_placements(base.len()) {
            let t_base = platform.execute(&base, &placement, &mut rng).total_time_s;
            let t_scaled = platform.execute(&scaled, &placement, &mut rng).total_time_s;
            prop_assert!(t_scaled > t_base, "scaling flops must slow execution");
        }
    }

    #[test]
    fn noise_preserves_mean_scale(specs in vec(task_strategy(), 1..3), seed in 0u64..200) {
        let mut platform = quiet_platform();
        platform.device_noise = NoiseModel::Gaussian { std_frac: 0.05 };
        platform.accel_noise = NoiseModel::Gaussian { std_frac: 0.05 };
        let tasks = build_tasks(&specs);
        let quiet_time = quiet_platform()
            .execute(&tasks, &vec![Loc::Device; tasks.len()], &mut StdRng::seed_from_u64(0))
            .total_time_s;
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = platform
            .measure(&tasks, &vec![Loc::Device; tasks.len()], 60, &mut rng)
            .unwrap();
        // The noisy mean stays within 10% of the noise-free time (5%
        // Gaussian noise, 60 repetitions).
        prop_assert!(
            (sample.mean() - quiet_time).abs() < 0.10 * quiet_time,
            "mean {} vs quiet {quiet_time}", sample.mean()
        );
        prop_assert!(sample.min() > 0.0);
    }

    #[test]
    fn offloading_more_tasks_never_reduces_transfers(
        specs in vec(task_strategy(), 2..5),
        seed in 0u64..500,
    ) {
        let platform = quiet_platform();
        let tasks = build_tasks(&specs);
        let n = tasks.len();
        let mut rng = StdRng::seed_from_u64(seed);
        // Compare all-device against each single-offload placement.
        let none = platform.execute(&tasks, &vec![Loc::Device; n], &mut rng);
        for k in 0..n {
            let mut placement = vec![Loc::Device; n];
            placement[k] = Loc::Accelerator;
            let one = platform.execute(&tasks, &placement, &mut rng);
            prop_assert!(one.bytes_transferred >= none.bytes_transferred);
            prop_assert!(one.operating_cost > 0.0);
        }
    }

    #[test]
    fn energy_scales_with_idle_power(specs in vec(task_strategy(), 1..3), seed in 0u64..200) {
        let tasks = build_tasks(&specs);
        let placement = vec![Loc::Device; tasks.len()];
        let mut lazy = quiet_platform();
        lazy.accelerator.idle_power_watts = 0.0;
        let mut hungry = quiet_platform();
        hungry.accelerator.idle_power_watts = 50.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let e_lazy = lazy.execute(&tasks, &placement, &mut rng).energy.total();
        let e_hungry = hungry.execute(&tasks, &placement, &mut rng).energy.total();
        prop_assert!(e_hungry > e_lazy, "idle power must show up in energy");
    }
}
