//! Machine-readable benchmark of the blocked, parallel linalg kernel
//! engine: times the naive reference kernels against the packed
//! microkernel engine (serial and row-block-parallel) on the same machine
//! and build, verifies bit-identity before every timing, and writes the
//! medians to `BENCH_linalg.json`.
//!
//! Sections:
//!
//! * `gemm/*` — square products at the sizes the experiments measure;
//! * `factor/*` — LU and Cholesky, blocked vs unblocked reference;
//! * `strassen/*` — the recalibrated crossover against the blocked engine;
//! * `table1/*` — the end-to-end *measurement phase* of the Table I
//!   workload (Procedure 5 run for real): the dominant pipeline cost this
//!   engine exists to cut.
//!
//! Run from the workspace root:
//!
//! ```bash
//! cargo run --release -p relperf-bench --bin bench_linalg
//! ```

use rand::prelude::*;
use relperf_linalg::cholesky::Cholesky;
use relperf_linalg::gemm::{gemm_blocked, gemm_naive, gemm_parallel_with};
use relperf_linalg::lu::Lu;
use relperf_linalg::random::{random_matrix, random_spd};
use relperf_linalg::strassen::gemm_strassen_with_cutoff;
use relperf_linalg::{KernelEngine, Parallelism};
use relperf_workloads::scientific_code::{run_real_custom_with, SIZES};
use std::hint::black_box;
use std::time::Instant;

/// Median wall times of `runs` **interleaved** executions of `before` and
/// `after`, in seconds. Alternating the two sides inside one loop keeps
/// machine drift (shared-host load, frequency scaling) from landing on
/// only one of them.
fn median_pair(runs: usize, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    before(); // warmup
    after();
    let mut tb = Vec::with_capacity(runs);
    let mut ta = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        before();
        tb.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        after();
        ta.push(t.elapsed().as_secs_f64());
    }
    tb.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ta.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (tb[runs / 2], ta[runs / 2])
}

struct Entry {
    name: String,
    before_s: f64,
    after_s: f64,
    note: &'static str,
}

fn runs_for(n: usize) -> usize {
    (40_000_000 / (n * n * n / 64).max(1)).clamp(5, 21)
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();
    let mut rng = StdRng::seed_from_u64(42);

    // — GEMM: naive vs blocked vs blocked+parallel —
    for n in [128usize, 256, 512] {
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        let reference = gemm_naive(&a, &b).unwrap();
        assert_eq!(gemm_blocked(&a, &b).unwrap(), reference, "bit-identity");
        assert_eq!(
            gemm_parallel_with(&a, &b, Parallelism::auto()).unwrap(),
            reference,
            "bit-identity (parallel)"
        );
        let runs = runs_for(n);
        let (naive_s, blocked_s) = median_pair(
            runs,
            || {
                black_box(gemm_naive(black_box(&a), black_box(&b)).unwrap());
            },
            || {
                black_box(gemm_blocked(black_box(&a), black_box(&b)).unwrap());
            },
        );
        let (_, parallel_s) = median_pair(
            runs,
            || {
                black_box(gemm_naive(black_box(&a), black_box(&b)).unwrap());
            },
            || {
                black_box(
                    gemm_parallel_with(black_box(&a), black_box(&b), Parallelism::auto()).unwrap(),
                );
            },
        );
        entries.push(Entry {
            name: format!("gemm/n{n}/blocked"),
            before_s: naive_s,
            after_s: blocked_s,
            note: "naive ikj vs packed microkernel engine, bit-identical",
        });
        entries.push(Entry {
            name: format!("gemm/n{n}/parallel"),
            before_s: naive_s,
            after_s: parallel_s,
            note: "naive ikj vs row-block-parallel engine, bit-identical",
        });
    }

    // — Factorizations: blocked vs unblocked reference —
    {
        let n = 768;
        let a = random_matrix(&mut rng, n, n);
        assert_eq!(Lu::factor(&a).unwrap(), Lu::factor_reference(&a).unwrap());
        let runs = runs_for(n).max(5);
        let (before_s, after_s) = median_pair(
            runs,
            || {
                black_box(Lu::factor_reference(black_box(&a)).unwrap());
            },
            || {
                black_box(Lu::factor(black_box(&a)).unwrap());
            },
        );
        entries.push(Entry {
            name: format!("factor/lu_n{n}"),
            before_s,
            after_s,
            note: "right-looking rank-1 vs panel-blocked, bit-identical",
        });

        let spd = random_spd(&mut rng, n);
        assert_eq!(
            Cholesky::factor(&spd).unwrap(),
            Cholesky::factor_reference(&spd).unwrap()
        );
        let (before_s, after_s) = median_pair(
            runs,
            || {
                black_box(Cholesky::factor_reference(black_box(&spd)).unwrap());
            },
            || {
                black_box(Cholesky::factor(black_box(&spd)).unwrap());
            },
        );
        entries.push(Entry {
            name: format!("factor/cholesky_n{n}"),
            before_s,
            after_s,
            note: "right-looking rank-1 vs panel-blocked, bit-identical",
        });
    }

    // — Strassen crossover against the blocked engine —
    for (n, cutoff) in [(512usize, 64usize), (512, 256)] {
        let a = random_matrix(&mut rng, n, n);
        let b = random_matrix(&mut rng, n, n);
        let runs = runs_for(n).min(7);
        let (strassen_s, blocked_s) = median_pair(
            runs,
            || {
                black_box(gemm_strassen_with_cutoff(black_box(&a), black_box(&b), cutoff).unwrap());
            },
            || {
                black_box(gemm_blocked(black_box(&a), black_box(&b)).unwrap());
            },
        );
        entries.push(Entry {
            name: format!("strassen/n{n}_cutoff{cutoff}"),
            before_s: strassen_s,
            after_s: blocked_s,
            note: "strassen at this cutoff vs the blocked engine (before = strassen)",
        });
    }

    // — End to end: the Table I measurement phase (Procedure 5 for real) —
    // One repetition of the paper's three chained MathTasks (sizes
    // 50/75/300) with a reduced loop count; the measurement phase of the
    // Table I campaign is N repetitions of exactly this.
    {
        let iters = 2;
        let seed = 7;
        let runs = 7;
        let (before_s, after_s) = median_pair(
            runs,
            || {
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(
                    run_real_custom_with(&mut rng, &SIZES, iters, KernelEngine::Reference).unwrap(),
                );
            },
            || {
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(
                    run_real_custom_with(&mut rng, &SIZES, iters, KernelEngine::Blocked).unwrap(),
                );
            },
        );
        // Sanity: identical penalties, whichever engine measured.
        let p_ref =
            run_real_custom_with(&mut StdRng::seed_from_u64(seed), &SIZES, iters, KernelEngine::Reference)
                .unwrap();
        let p_blk =
            run_real_custom_with(&mut StdRng::seed_from_u64(seed), &SIZES, iters, KernelEngine::Blocked)
                .unwrap();
        assert_eq!(p_ref.to_bits(), p_blk.to_bits(), "engine goldens");
        entries.push(Entry {
            name: "table1/measurement_phase".to_string(),
            before_s,
            after_s,
            note: "one Procedure-5 repetition (sizes 50/75/300), naive vs blocked kernels",
        });
    }

    // Render: human table to stdout, machine-readable JSON to disk.
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "benchmark", "before", "after", "speedup"
    );
    let mut json = String::from("{\n  \"bench\": \"linalg\",\n  \"units\": \"seconds\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.before_s / e.after_s;
        println!(
            "{:<28} {:>9.2} ms {:>9.2} ms {:>7.2}x",
            e.name,
            e.before_s * 1e3,
            e.after_s * 1e3,
            speedup
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_median_s\": {:.3e}, \"after_median_s\": {:.3e}, \"speedup\": {:.2}, \"note\": \"{}\"}}{}\n",
            e.name,
            e.before_s,
            e.after_s,
            speedup,
            e.note,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_linalg.json", &json).expect("write BENCH_linalg.json");
    println!("\nwrote BENCH_linalg.json");
}
