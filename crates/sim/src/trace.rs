//! Execution traces: Gantt-style timelines and utilization summaries
//! derived from an [`ExecutionRecord`].
//!
//! Used by the examples to *show* where an algorithm spends its time —
//! the visual counterpart of the paper's claim that the data movement of
//! an offloaded loop can eat its compute gain.

use crate::executor::ExecutionRecord;
use crate::task::Loc;

/// One rendered timeline segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Task name.
    pub name: String,
    /// Where the task ran.
    pub loc: Loc,
    /// Start offset from t=0, seconds.
    pub start_s: f64,
    /// Segment duration, seconds.
    pub duration_s: f64,
    /// Portion of the duration spent on the link, seconds.
    pub transfer_s: f64,
}

/// Builds the sequential timeline of an execution record.
pub fn timeline(record: &ExecutionRecord) -> Vec<Segment> {
    let mut t = 0.0;
    record
        .per_task
        .iter()
        .map(|task| {
            let seg = Segment {
                name: task.name.clone(),
                loc: task.loc,
                start_s: t,
                duration_s: task.time_s,
                transfer_s: task.transfer_s,
            };
            t += task.time_s;
            seg
        })
        .collect()
}

/// Per-resource utilization fractions of a record (busy time / total).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Edge-device busy fraction.
    pub device: f64,
    /// Accelerator busy fraction.
    pub accelerator: f64,
    /// Link busy fraction.
    pub link: f64,
}

/// Computes utilization from a record. All zero for an empty record.
pub fn utilization(record: &ExecutionRecord) -> Utilization {
    if record.total_time_s <= 0.0 {
        return Utilization {
            device: 0.0,
            accelerator: 0.0,
            link: 0.0,
        };
    }
    Utilization {
        device: record.device_busy_s / record.total_time_s,
        accelerator: record.accel_busy_s / record.total_time_s,
        link: record.transfer_s / record.total_time_s,
    }
}

/// Renders an ASCII Gantt chart of the record, `width` characters wide.
///
/// Each task is one row; `D`/`A` cells mark compute on the device or
/// accelerator, `~` marks link time (appended at the task's tail, which is
/// a rendering simplification — transfers are interleaved in reality).
pub fn render_gantt(record: &ExecutionRecord, width: usize) -> String {
    assert!(width >= 10, "gantt needs at least 10 columns");
    let total = record.total_time_s;
    if total <= 0.0 {
        return String::from("(empty execution)\n");
    }
    let mut out = String::new();
    for seg in timeline(record) {
        let start = (seg.start_s / total * width as f64).round() as usize;
        let len = ((seg.duration_s / total * width as f64).round() as usize).max(1);
        let transfer_len =
            ((seg.transfer_s / total * width as f64).round() as usize).min(len);
        let compute_len = len - transfer_len;
        let fill = match seg.loc {
            Loc::Device => "D",
            Loc::Accelerator => "A",
        };
        out.push_str(&format!("{:<6} |", seg.name));
        out.push_str(&" ".repeat(start.min(width)));
        out.push_str(&fill.repeat(compute_len.min(width.saturating_sub(start))));
        out.push_str(&"~".repeat(transfer_len.min(
            width.saturating_sub(start + compute_len),
        )));
        out.push_str(&format!(
            "  {:.4}s{}\n",
            seg.duration_s,
            if seg.transfer_s > 0.0 {
                format!(" (link {:.4}s)", seg.transfer_s)
            } else {
                String::new()
            }
        ));
    }
    let u = utilization(record);
    out.push_str(&format!(
        "util   | device {:.0}%  accel {:.0}%  link {:.0}%\n",
        100.0 * u.device,
        100.0 * u.accelerator,
        100.0 * u.link
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::TaskRecord;

    fn record() -> ExecutionRecord {
        ExecutionRecord {
            total_time_s: 1.0,
            device_busy_s: 0.6,
            accel_busy_s: 0.3,
            transfer_s: 0.1,
            per_task: vec![
                TaskRecord {
                    name: "L1".into(),
                    loc: Loc::Device,
                    time_s: 0.6,
                    transfer_s: 0.0,
                    flops: 100,
                },
                TaskRecord {
                    name: "L2".into(),
                    loc: Loc::Accelerator,
                    time_s: 0.4,
                    transfer_s: 0.1,
                    flops: 200,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn timeline_offsets_are_cumulative() {
        let tl = timeline(&record());
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].start_s, 0.0);
        assert!((tl[1].start_s - 0.6).abs() < 1e-12);
        assert_eq!(tl[1].loc, Loc::Accelerator);
    }

    #[test]
    fn utilization_fractions() {
        let u = utilization(&record());
        assert!((u.device - 0.6).abs() < 1e-12);
        assert!((u.accelerator - 0.3).abs() < 1e-12);
        assert!((u.link - 0.1).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_record_is_zero() {
        let u = utilization(&ExecutionRecord::default());
        assert_eq!(u.device, 0.0);
        assert_eq!(u.accelerator, 0.0);
        assert_eq!(u.link, 0.0);
    }

    #[test]
    fn gantt_renders_both_rows() {
        let g = render_gantt(&record(), 40);
        assert!(g.contains("L1"));
        assert!(g.contains("L2"));
        assert!(g.contains('D'));
        assert!(g.contains('A'));
        assert!(g.contains('~'));
        assert!(g.contains("util"));
    }

    #[test]
    fn gantt_empty_record() {
        assert!(render_gantt(&ExecutionRecord::default(), 40).contains("empty"));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn gantt_width_checked() {
        render_gantt(&record(), 5);
    }
}
