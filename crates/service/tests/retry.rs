//! Client-side retry policy: bounded, deterministic retries of the three
//! transient backpressure rejections, with between-attempt drains that
//! make progress against a synchronous runtime — and a hard guarantee
//! that nothing already admitted is ever resubmitted.

use relperf_measure::compare::MedianComparator;
use relperf_core::cluster::Parallelism;
use relperf_service::client::{RetryPolicy, SubmitOutcome};
use relperf_service::prelude::*;
use relperf_service::service::SessionService;
use std::time::Duration;

/// A sync-mode (drive-on-drain) runtime over tight admission limits: the
/// only way backpressure clears is a client-driven batch, so retry
/// progress is fully deterministic.
fn tight_runtime(tenant_in_flight: usize) -> ServiceRuntime<MedianComparator> {
    let service = SessionService::new(
        MedianComparator::new(0.05),
        2,
        Parallelism::serial(),
        ServiceLimits {
            tenant_in_flight,
            ..ServiceLimits::default()
        },
    );
    ServiceRuntime::start(
        service,
        RuntimeConfig {
            scheduler_threads: 0,
            ..Default::default()
        },
    )
}

fn push(alg: usize, value: f64) -> Vec<SessionOp> {
    vec![SessionOp::Push { alg, value }]
}

#[test]
fn policy_backoff_schedule_clamps_to_last_entry() {
    let policy = RetryPolicy::default();
    assert_eq!(policy.max_attempts, 4);
    assert_eq!(policy.backoff(1), Some(Duration::from_millis(1)));
    assert_eq!(policy.backoff(3), Some(Duration::from_millis(4)));
    assert_eq!(policy.backoff(99), Some(Duration::from_millis(4)), "clamps");
    let immediate = RetryPolicy::immediate(7);
    assert_eq!(immediate.max_attempts, 7);
    assert_eq!(immediate.backoff(1), None, "empty schedule never sleeps");
}

/// The seeded exponential schedule is pinned to the nanosecond: same
/// arguments, same sleeps, forever — jitter bounded in `[0.75, 1.25)` of
/// the exponential envelope, capped, and de-synchronized across seeds.
#[test]
fn exponential_backoff_schedule_is_pinned() {
    let policy = RetryPolicy::exponential(
        8,
        Duration::from_millis(1),
        Duration::from_millis(100),
        42,
    );
    assert_eq!(policy.max_attempts, 8);
    let pinned: [u64; 7] = [
        1_114_089, 1_713_358, 3_137_161, 8_920_797, 15_865_694, 39_704_384, 78_989_234,
    ];
    for (k, &nanos) in pinned.iter().enumerate() {
        assert_eq!(
            policy.backoff(k + 1),
            Some(Duration::from_nanos(nanos)),
            "retry {} drifted",
            k + 1
        );
    }
    // Rebuilding with the same arguments reproduces it exactly.
    let again = RetryPolicy::exponential(
        8,
        Duration::from_millis(1),
        Duration::from_millis(100),
        42,
    );
    assert_eq!(again.backoff(3), policy.backoff(3));
    // A different seed de-synchronizes, staying inside the envelope.
    let other = RetryPolicy::exponential(
        8,
        Duration::from_millis(1),
        Duration::from_millis(100),
        43,
    );
    for k in 1..=7usize {
        let envelope = Duration::from_millis(1 << (k - 1)).min(Duration::from_millis(100));
        for p in [&policy, &other] {
            let d = p.backoff(k).unwrap();
            assert!(d >= envelope.mul_f64(0.75), "retry {k} below jitter floor");
            assert!(d < envelope.mul_f64(1.25), "retry {k} above jitter ceiling");
        }
        assert_ne!(other.backoff(k), policy.backoff(k), "seeds must de-synchronize");
    }
    // The cap flattens the tail: retries past the schedule reuse the last
    // (capped) entry rather than growing without bound.
    assert_eq!(policy.backoff(99), policy.backoff(7));
    // Degenerate shapes stay total.
    assert_eq!(
        RetryPolicy::exponential(1, Duration::from_millis(1), Duration::from_millis(9), 7)
            .backoff(1),
        None,
        "no retries, no sleeps"
    );
    assert_eq!(
        RetryPolicy::exponential(0, Duration::from_millis(1), Duration::from_millis(9), 7)
            .max_attempts,
        0
    );
}

/// The exactly-once admission proof holds under the jittered policy too:
/// seeded backoff changes *when* retries happen, never *whether* a group
/// can be admitted twice.
#[test]
fn exponential_policy_preserves_exactly_once_admission() {
    let runtime = tight_runtime(2);
    let (mut client, server) = WireClient::connect_in_proc(runtime.handle());
    client.create_session(1, 1, SessionSpec::new(1, 7)).unwrap();

    // Microsecond-scale sleeps keep the test fast while exercising the
    // real sleep path between attempts.
    let policy =
        RetryPolicy::exponential(8, Duration::from_micros(10), Duration::from_micros(200), 7);
    let mut seqs = Vec::new();
    for i in 0..12 {
        let outcome = client.submit_with_retry(1, 1, push(0, i as f64), &policy).unwrap();
        seqs.extend(outcome.seqs);
    }
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), 12, "every push admitted exactly once");
    // Drain the tail the sync-mode runtime has not been driven past yet.
    client.collect_ready(1).unwrap();
    assert_eq!(runtime.stats().ops_executed, 12);

    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
    runtime.shutdown();
}

#[test]
fn retry_succeeds_after_backpressure_clears() {
    let runtime = tight_runtime(2);
    let (mut client, server) = WireClient::connect_in_proc(runtime.handle());
    client.create_session(1, 1, SessionSpec::new(1, 7)).unwrap();

    // Fill the tenant's in-flight budget: the next plain submit bounces.
    let queued = client.submit(1, 1, push(0, 1.0)).unwrap()[0];
    client.submit(1, 1, push(0, 2.0)).unwrap();
    assert!(matches!(
        client.submit(1, 1, push(0, 3.0)),
        Err(ClientError::Service(ServiceError::TenantBusy { .. }))
    ));

    // With retry, the between-attempt drain runs the sync-mode batch,
    // freeing the budget — the second attempt is admitted.
    let SubmitOutcome { seqs, attempts, drained } = client
        .submit_with_retry(1, 1, push(0, 3.0), &RetryPolicy::immediate(4))
        .unwrap();
    assert_eq!(seqs.len(), 1);
    assert_eq!(attempts, 2, "one rejection, one admission");
    assert!(
        drained.iter().any(|r| r.seq == queued),
        "the drain delivered the earlier tickets to this call"
    );
    let stats = client.retry_stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.exhausted, 0);
    assert!(stats.drained_responses >= 2);
    // Plain `submit` calls don't count — only `submit_with_retry` attempts.
    assert_eq!(stats.attempts, 2);

    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
    runtime.shutdown();
}

#[test]
fn exhausted_policy_surfaces_the_final_error() {
    let runtime = tight_runtime(1);
    let (mut client, server) = WireClient::connect_in_proc(runtime.handle());
    client.create_session(1, 1, SessionSpec::new(1, 7)).unwrap();

    // The sync runtime clears TenantBusy on every between-attempt drain,
    // so exhaustion is pinned with max_attempts = 1: the budget is full
    // and the single allowed attempt is the last.
    client.submit(1, 1, push(0, 1.0)).unwrap();
    let err = client
        .submit_with_retry(1, 1, push(0, 2.0), &RetryPolicy::immediate(1))
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Service(ServiceError::TenantBusy { .. })
    ));
    let stats = client.retry_stats();
    assert_eq!(stats.exhausted, 1);
    assert_eq!(stats.retries, 0, "no retry budget was available");

    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
    runtime.shutdown();
}

#[test]
fn non_transient_errors_abort_immediately() {
    let runtime = tight_runtime(8);
    let (mut client, server) = WireClient::connect_in_proc(runtime.handle());
    client.create_session(1, 1, SessionSpec::new(1, 7)).unwrap();

    // Unknown session: typed, non-transient, not retried.
    let err = client
        .submit_with_retry(1, 99, push(0, 1.0), &RetryPolicy::immediate(5))
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Service(ServiceError::SessionUnknown { .. })
    ));
    let stats = client.retry_stats();
    assert_eq!(stats.attempts, 1, "no second attempt on a hard rejection");
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.exhausted, 0, "aborted, not exhausted");

    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
    runtime.shutdown();
}

/// The retried op is admitted exactly once: every seq the service hands
/// out is distinct and every response arrives exactly once.
#[test]
fn retries_never_duplicate_an_admission() {
    let runtime = tight_runtime(2);
    let (mut client, server) = WireClient::connect_in_proc(runtime.handle());
    client.create_session(1, 1, SessionSpec::new(1, 7)).unwrap();

    let mut seqs = Vec::new();
    let mut delivered = Vec::new();
    for i in 0..20 {
        let outcome = client
            .submit_with_retry(1, 1, push(0, i as f64), &RetryPolicy::immediate(8))
            .unwrap();
        seqs.extend(outcome.seqs);
        delivered.extend(outcome.drained.into_iter().map(|r| r.seq));
    }
    delivered.extend(client.collect_ready(1).unwrap().into_iter().map(|r| r.seq));
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), 20, "every push admitted exactly once");
    delivered.sort_unstable();
    let dup_free = {
        let mut d = delivered.clone();
        d.dedup();
        d
    };
    assert_eq!(delivered, dup_free, "no response delivered twice");
    assert_eq!(delivered, seqs, "every admitted op answered exactly once");
    assert_eq!(
        runtime.stats().ops_executed,
        20,
        "the service executed each push once"
    );

    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
    runtime.shutdown();
}
