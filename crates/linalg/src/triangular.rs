//! Triangular solves, forward and backward, for vectors and matrices.
//!
//! The vector solves are the per-column references. The matrix solves are
//! restructured for locality — the forward solve is blocked and
//! GEMM-rich (off-diagonal updates run through the packed microkernel
//! engine), the backward solve is a contiguous row sweep — but both apply,
//! per output element, exactly the same fused operations in exactly the
//! same order as solving each column with the vector routine, so they are
//! **bit-identical** to the column-by-column reference (property-tested).

use crate::blas::axpy;
use crate::error::{LinalgError, Result};
use crate::gemm::{gemm_region, Acc, PackArena, BLOCK};
use crate::matrix::Matrix;

/// Minimum pivot magnitude below which a triangular matrix is treated as
/// numerically singular.
pub const SINGULAR_TOL: f64 = 1e-13;

fn check_square(op: &'static str, m: &Matrix) -> Result<()> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare { op, shape: m.shape() });
    }
    Ok(())
}

/// Solves `L·x = b` for lower-triangular `L` by forward substitution.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square("solve_lower", l)?;
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower",
            lhs: l.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = b.to_vec();
    for i in 0..n {
        let row = l.row(i);
        let mut s = x[i];
        for j in 0..i {
            s = crate::fmadd(-row[j], x[j], s);
        }
        let d = row[i];
        if d.abs() < SINGULAR_TOL {
            return Err(LinalgError::Singular {
                op: "solve_lower",
                pivot: i,
            });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U·x = b` for upper-triangular `U` by backward substitution.
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square("solve_upper", u)?;
    let n = u.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_upper",
            lhs: u.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = x[i];
        for j in (i + 1)..n {
            s = crate::fmadd(-row[j], x[j], s);
        }
        let d = row[i];
        if d.abs() < SINGULAR_TOL {
            return Err(LinalgError::Singular {
                op: "solve_upper",
                pivot: i,
            });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `L·X = B` for a matrix right-hand side: blocked forward
/// substitution, in place on a working copy of `B`.
///
/// Row blocks are processed top-down; the contribution of all previously
/// solved blocks is subtracted through the packed microkernel engine
/// (`X[b0..b1] −= L[b0..b1, 0..b0] · X[0..b0]`), then a row sweep finishes
/// the block. Per element the subtraction order is `j = 0, 1, …, i−1` with
/// one accumulator — the same fused sequence as [`solve_lower`] per
/// column, hence bit-identical to the column-by-column reference.
pub fn solve_lower_matrix(l: &Matrix, b: &Matrix) -> Result<Matrix> {
    check_square("solve_lower_matrix", l)?;
    if b.rows() != l.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower_matrix",
            lhs: l.shape(),
            rhs: b.shape(),
        });
    }
    let n = l.rows();
    let ncols = b.cols();
    let mut x = b.clone();
    if n == 0 || ncols == 0 {
        return Ok(x);
    }
    let mut arena = PackArena::new();
    for b0 in (0..n).step_by(BLOCK) {
        let b1 = (b0 + BLOCK).min(n);
        if b0 > 0 {
            let (solved, rest) = x.split_rows_mut(b0);
            gemm_region(
                rest,
                ncols,
                0,
                0,
                b1 - b0,
                ncols,
                b0,
                l.as_slice(),
                n,
                b0,
                0,
                false,
                solved,
                ncols,
                0,
                0,
                false,
                Acc::Sub,
                &mut arena,
            );
        }
        for i in b0..b1 {
            let (head, tail) = x.split_rows_mut(i);
            let xi = &mut tail[..ncols];
            let lrow = l.row(i);
            for j in b0..i {
                axpy(-lrow[j], &head[j * ncols..(j + 1) * ncols], xi);
            }
            let d = lrow[i];
            if d.abs() < SINGULAR_TOL {
                return Err(LinalgError::Singular {
                    op: "solve_lower_matrix",
                    pivot: i,
                });
            }
            for v in xi.iter_mut() {
                *v /= d;
            }
        }
    }
    Ok(x)
}

/// Solves `U·X = B` for a matrix right-hand side: backward substitution as
/// a contiguous row sweep, in place on a working copy of `B`.
///
/// Rows are finished bottom-up; row `i` subtracts `u[i][j]·x_j` for
/// `j = i+1, …, n−1` in ascending `j` — the same fused per-element
/// sequence as [`solve_upper`] per column, hence bit-identical to the
/// column-by-column reference. (Ascending-`j` subtraction is why this
/// solve stays a row sweep: a trailing blocked update would have to
/// subtract later blocks before the in-block terms, changing the order.)
pub fn solve_upper_matrix(u: &Matrix, b: &Matrix) -> Result<Matrix> {
    check_square("solve_upper_matrix", u)?;
    if b.rows() != u.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_upper_matrix",
            lhs: u.shape(),
            rhs: b.shape(),
        });
    }
    let n = u.rows();
    let ncols = b.cols();
    let mut x = b.clone();
    if n == 0 || ncols == 0 {
        return Ok(x);
    }
    for i in (0..n).rev() {
        let (head, tail) = x.split_rows_mut(i + 1);
        let xi = &mut head[i * ncols..];
        let urow = u.row(i);
        for (jj, xj) in tail.chunks_exact(ncols).enumerate() {
            axpy(-urow[i + 1 + jj], xj, xi);
        }
        let d = urow[i];
        if d.abs() < SINGULAR_TOL {
            return Err(LinalgError::Singular {
                op: "solve_upper_matrix",
                pivot: i,
            });
        }
        for v in xi.iter_mut() {
            *v /= d;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemv;
    use crate::random::{random_lower_triangular, random_matrix, random_vector};
    use rand::prelude::*;

    #[test]
    fn forward_substitution_known() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower(&l, &[4.0, 11.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn backward_substitution_known() {
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let x = solve_upper(&u, &[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn random_roundtrip_lower() {
        let mut rng = StdRng::seed_from_u64(11);
        let l = random_lower_triangular(&mut rng, 20);
        let x_true = random_vector(&mut rng, 20);
        let b = gemv(&l, &x_true).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-8, "{a} vs {e}");
        }
    }

    #[test]
    fn random_roundtrip_upper() {
        let mut rng = StdRng::seed_from_u64(12);
        let u = random_lower_triangular(&mut rng, 20).transpose();
        let x_true = random_vector(&mut rng, 20);
        let b = gemv(&u, &x_true).unwrap();
        let x = solve_upper(&u, &b).unwrap();
        for (a, e) in x.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-8);
        }
    }

    #[test]
    fn singular_diagonal_detected() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[5.0, 0.0]]).unwrap();
        let err = solve_lower(&l, &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 1, .. }));
        let u = Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 1.0]]).unwrap();
        let err = solve_upper(&u, &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 0, .. }));
        // The matrix solves detect the same pivot.
        let err = solve_lower_matrix(&l, &Matrix::zeros(2, 2)).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 1, .. }));
        let err = solve_upper_matrix(&u, &Matrix::zeros(2, 2)).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 0, .. }));
    }

    #[test]
    fn shape_errors() {
        let l = Matrix::zeros(2, 3);
        assert!(solve_lower(&l, &[1.0, 2.0]).is_err());
        let l = Matrix::identity(3);
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_upper(&l, &[1.0]).is_err());
        assert!(solve_lower_matrix(&l, &Matrix::zeros(2, 2)).is_err());
        assert!(solve_upper_matrix(&l, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn matrix_rhs_bit_identical_to_columnwise_vector_solves() {
        // The blocked / row-sweep matrix solves must agree with the
        // per-column vector references exactly, including across the
        // BLOCK boundary.
        let mut rng = StdRng::seed_from_u64(13);
        for n in [1usize, 15, BLOCK - 1, BLOCK, BLOCK + 3, 2 * BLOCK + 5] {
            let l = random_lower_triangular(&mut rng, n);
            let b = random_matrix(&mut rng, n, 4);
            let x = solve_lower_matrix(&l, &b).unwrap();
            for c in 0..4 {
                let xc = solve_lower(&l, &b.col(c)).unwrap();
                assert_eq!(x.col(c), xc, "lower n={n} col={c}");
            }
            let u = l.transpose();
            let xu = solve_upper_matrix(&u, &b).unwrap();
            for c in 0..4 {
                let xc = solve_upper(&u, &b.col(c)).unwrap();
                assert_eq!(xu.col(c), xc, "upper n={n} col={c}");
            }
        }
    }

    #[test]
    fn empty_rhs_passes_through() {
        let l = Matrix::identity(3);
        let x = solve_lower_matrix(&l, &Matrix::zeros(3, 0)).unwrap();
        assert_eq!(x.shape(), (3, 0));
        let x = solve_upper_matrix(&l, &Matrix::zeros(3, 0)).unwrap();
        assert_eq!(x.shape(), (3, 0));
    }
}
