//! Energy and operating-cost accounting.

/// Joule-level energy breakdown of one simulated execution.
///
/// The paper's Sec. IV decision models reason about "the number of floating
/// point operations performed … on a particular device (which minimizes
/// energy)"; this struct carries the per-component energy so those models
/// can weigh device energy against accelerator and link energy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Dynamic + idle energy of the edge device, joules.
    pub device_j: f64,
    /// Dynamic + idle energy of the accelerator, joules.
    pub accel_j: f64,
    /// Transfer energy of the interconnect, joules.
    pub link_j: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    pub fn total(&self) -> f64 {
        self.device_j + self.accel_j + self.link_j
    }

    /// Componentwise sum.
    #[must_use]
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            device_j: self.device_j + other.device_j,
            accel_j: self.accel_j + other.accel_j,
            link_j: self.link_j + other.link_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let e = EnergyBreakdown {
            device_j: 1.0,
            accel_j: 2.0,
            link_j: 0.5,
        };
        assert!((e.total() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn add_is_componentwise() {
        let a = EnergyBreakdown {
            device_j: 1.0,
            accel_j: 2.0,
            link_j: 3.0,
        };
        let b = EnergyBreakdown {
            device_j: 0.5,
            accel_j: 0.5,
            link_j: 0.5,
        };
        let s = a.add(&b);
        assert_eq!(s.device_j, 1.5);
        assert_eq!(s.accel_j, 2.5);
        assert_eq!(s.link_j, 3.5);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EnergyBreakdown::default().total(), 0.0);
    }
}
