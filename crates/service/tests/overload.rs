//! Overload injection: a tenant flood is shed with *typed* wire errors
//! (`TenantBusy`, `QueueFull`, `Overloaded`), the op-level counters stay
//! consistent (`admitted + rejected == submitted`, quiesced
//! `executed == admitted`), and tenants that survive the storm produce
//! waves bit-identical to an unloaded run.

use relperf_core::cluster::Parallelism;
use relperf_measure::compare::MedianComparator;
use relperf_service::prelude::*;
use relperf_service::service::SessionService;
use std::time::Duration;

fn runtime(limits: ServiceLimits) -> ServiceRuntime<MedianComparator> {
    let service = SessionService::new(MedianComparator::new(0.05), 2, Parallelism::serial(), limits);
    // Synchronous drive-on-drain mode: every admission decision and every
    // batch is deterministic, so the shed/admit split is exactly
    // reproducible.
    ServiceRuntime::start(
        service,
        RuntimeConfig {
            scheduler_threads: 0,
            ..Default::default()
        },
    )
}

/// After every scenario the op ledger must balance.
fn assert_ledger_consistent(stats: &ServiceStats, quiesced: bool) {
    assert_eq!(
        stats.ops_admitted + stats.ops_rejected,
        stats.ops_submitted,
        "every submitted op is either admitted or rejected: {stats:?}"
    );
    assert!(stats.shed <= stats.ops_rejected, "shed is a subset of rejections");
    if quiesced {
        assert_eq!(
            stats.ops_executed, stats.ops_admitted,
            "quiesced service has executed everything it admitted: {stats:?}"
        );
    }
}

/// A tenant flooding past its in-flight cap gets `TenantBusy` over the
/// wire — a typed error value, not a dropped connection — and the ledger
/// balances afterwards.
#[test]
fn tenant_flood_is_shed_with_typed_tenant_busy() {
    let rt = runtime(ServiceLimits {
        tenant_in_flight: 4,
        ..ServiceLimits::default()
    });
    let (mut client, server) = WireClient::connect_in_proc(rt.handle());
    client.create_session(7, 1, SessionSpec::new(1, 3)).unwrap();

    let mut admitted = Vec::new();
    let mut busy = 0usize;
    for i in 0..12 {
        match client.submit(7, 1, vec![SessionOp::Push { alg: 0, value: i as f64 }]) {
            Ok(mut seqs) => admitted.append(&mut seqs),
            Err(ClientError::Service(ServiceError::TenantBusy { tenant, in_flight, cap })) => {
                assert_eq!(tenant, 7);
                assert_eq!(cap, 4);
                assert!(in_flight >= cap);
                busy += 1;
            }
            Err(other) => panic!("expected TenantBusy, got {other:?}"),
        }
    }
    assert_eq!(admitted.len(), 4, "exactly the cap is admitted");
    assert_eq!(busy, 8, "everything past the cap is typed-rejected");

    // Draining unblocks the tenant: the flood was shed, not fatal.
    let responses = client
        .await_responses(7, &admitted, Duration::from_secs(5))
        .unwrap();
    assert_eq!(responses.len(), 4);
    assert!(responses.iter().all(|r| matches!(r.result, Ok(OpOutcome::Ingested))));
    client.submit(7, 1, vec![SessionOp::Push { alg: 0, value: 99.0 }]).unwrap();
    let _ = client.collect_ready(7).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.ops_submitted, 13);
    assert_eq!(stats.ops_rejected, 8);
    assert_eq!(stats.shed, 0, "per-tenant backpressure is not service-wide shedding");
    assert_ledger_consistent(&stats, true);
    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
}

/// A shard queue filling up yields `QueueFull` with the shard's identity
/// and depth — backpressure is per-shard, so the flood names its victim.
#[test]
fn shard_queue_backpressure_is_typed_queue_full() {
    let rt = runtime(ServiceLimits {
        shard_queue_depth: 3,
        ..ServiceLimits::default()
    });
    let (mut client, server) = WireClient::connect_in_proc(rt.handle());
    client.create_session(1, 1, SessionSpec::new(1, 3)).unwrap();

    let mut admitted = 0usize;
    let mut full = 0usize;
    for i in 0..9 {
        match client.submit(1, 1, vec![SessionOp::Push { alg: 0, value: i as f64 }]) {
            Ok(_) => admitted += 1,
            Err(ClientError::Service(ServiceError::QueueFull { depth, cap, .. })) => {
                assert_eq!(cap, 3);
                assert!(depth >= cap);
                full += 1;
            }
            Err(other) => panic!("expected QueueFull, got {other:?}"),
        }
    }
    assert_eq!(admitted, 3);
    assert_eq!(full, 6);
    let _ = client.collect_ready(1).unwrap(); // quiesce
    let stats = client.stats().unwrap();
    assert_eq!(stats.ops_rejected, 6);
    assert_ledger_consistent(&stats, true);
    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
}

/// The service-wide backlog watermark sheds load with `Overloaded` (and
/// counts it in `shed`); once the scheduler catches up, admission
/// recovers.
#[test]
fn backlog_watermark_sheds_typed_overloaded_and_recovers() {
    let rt = runtime(ServiceLimits {
        max_backlog: 2,
        ..ServiceLimits::default()
    });
    let (mut client, server) = WireClient::connect_in_proc(rt.handle());
    client.create_session(5, 1, SessionSpec::new(1, 11)).unwrap();

    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for i in 0..6 {
        match client.submit(5, 1, vec![SessionOp::Push { alg: 0, value: i as f64 }]) {
            Ok(mut seqs) => admitted.append(&mut seqs),
            Err(ClientError::Service(ServiceError::Overloaded { backlog, cap })) => {
                assert_eq!(cap, 2);
                assert!(backlog >= 2);
                shed += 1;
            }
            Err(other) => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(admitted.len(), 2, "watermark admits exactly the backlog cap");
    assert_eq!(shed, 4);

    // A whole group above the watermark is shed atomically: all or
    // nothing, no partial admission.
    assert!(matches!(
        client.submit(
            5,
            1,
            vec![
                SessionOp::Push { alg: 0, value: 1.0 },
                SessionOp::Push { alg: 0, value: 2.0 },
                SessionOp::Push { alg: 0, value: 3.0 },
            ],
        ),
        Err(ClientError::Service(ServiceError::Overloaded { .. }))
    ));

    // Drain → backlog returns to zero → admission recovers.
    let responses = client
        .await_responses(5, &admitted, Duration::from_secs(5))
        .unwrap();
    assert_eq!(responses.len(), 2);
    client.submit(5, 1, vec![SessionOp::Push { alg: 0, value: 10.0 }]).unwrap();
    let _ = client.collect_ready(5).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.shed, 7, "4 singles + the atomic group of 3");
    assert_eq!(stats.ops_rejected, 7);
    assert_eq!(stats.ops_submitted, 10);
    assert_ledger_consistent(&stats, true);
    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
}

/// The satellite's core claim: a tenant that survives a flood (its ops
/// admitted while another tenant's are shed wholesale) scores waves
/// bit-identical to the same session on an unloaded service.
#[test]
fn surviving_tenant_is_bit_identical_to_unloaded_run() {
    // Unloaded reference: same session, no storm.
    let calm = SessionService::new(
        MedianComparator::new(0.05),
        2,
        Parallelism::serial(),
        ServiceLimits::default(),
    );
    calm.create_session(1, 1, SessionSpec::new(2, 77)).unwrap();

    // Stormy service: tenant 666 floods past its in-flight cap every
    // wave while tenant 1 runs the identical campaign.
    let rt = runtime(ServiceLimits {
        tenant_in_flight: 3, // the survivor's 3-op wave exactly fits
        ..ServiceLimits::default()
    });
    let (mut client, server) = WireClient::connect_in_proc(rt.handle());
    client.create_session(1, 1, SessionSpec::new(2, 77)).unwrap();
    client.create_session(666, 1, SessionSpec::new(1, 5)).unwrap();

    for wave in 0..3u64 {
        // The flood: far more ops than the cap admits.
        let mut rejected = 0usize;
        for i in 0..10 {
            if client
                .submit(666, 1, vec![SessionOp::Push { alg: 0, value: (wave * 10 + i) as f64 }])
                .is_err()
            {
                rejected += 1;
            }
        }
        assert!(rejected >= 7, "the storm must actually be shedding");

        // The survivor's wave, identical ops on both services.
        let values_a: Vec<f64> = (0..4).map(|i| 1.0 + (wave * 4 + i) as f64 * 0.01).collect();
        let values_b: Vec<f64> = (0..4).map(|i| 2.0 - (wave * 4 + i) as f64 * 0.01).collect();
        let ops = vec![
            SessionOp::Extend { alg: 0, values: values_a },
            SessionOp::Extend { alg: 1, values: values_b },
            SessionOp::Score,
        ];
        let mut calm_seq = 0;
        for op in ops.clone() {
            calm_seq = calm.submit(1, 1, op).unwrap();
        }
        let calm_responses = calm.run_batch();
        let calm_wave = calm_responses
            .iter()
            .find(|r| r.seq == calm_seq)
            .map(|r| match r.result.clone().unwrap() {
                OpOutcome::Scored(w) => w,
                other => panic!("expected Scored, got {other:?}"),
            })
            .unwrap();

        let seqs = client.submit(1, 1, ops).unwrap();
        let responses = client
            .await_responses(1, &seqs, Duration::from_secs(5))
            .unwrap();
        let Ok(OpOutcome::Scored(stormy_wave)) = &responses[2].result else {
            panic!("survivor's Score failed under load: {:?}", responses[2].result);
        };
        assert_eq!(
            stormy_wave, &calm_wave,
            "wave {wave}: survivor diverged from the unloaded run"
        );
        // Flush whatever the flood got admitted so the next wave's cap
        // check starts clean.
        let _ = client.collect_ready(666).unwrap();
    }

    let stats = client.stats().unwrap();
    assert!(stats.ops_rejected >= 21, "storm was shed: {stats:?}");
    assert_ledger_consistent(&stats, true);
    client.goodbye().unwrap();
    server.join().unwrap().unwrap();
}
