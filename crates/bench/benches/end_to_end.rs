//! B4 — End-to-end benchmarks: simulating one execution, collecting a full
//! N-measurement sample, and the complete measure→compare→cluster pipeline
//! for both paper experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use relperf_bench::paper_comparator;
use relperf_core::cluster::ClusterConfig;
use relperf_workloads::experiment::{cluster_measurements, measure_all, Experiment};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    let exp = Experiment::table1(10);
    let placement = &exp.placements[1].1; // DDA
    group.bench_function("one-execution", |bench| {
        let mut rng = StdRng::seed_from_u64(1);
        bench.iter(|| {
            exp.platform
                .execute(black_box(&exp.tasks), black_box(placement), &mut rng)
        })
    });
    for &n in &[30usize, 500] {
        group.bench_with_input(BenchmarkId::new("measure", n), &n, |bench, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            bench.iter(|| exp.platform.measure(&exp.tasks, placement, n, &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (name, exp, n) in [
        ("fig1-N30", Experiment::fig1(), 30usize),
        ("table1-N30", Experiment::table1(10), 30),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let measured = measure_all(&exp, n, &mut rng);
                let table = cluster_measurements(
                    &measured,
                    &paper_comparator(4),
                    ClusterConfig::with_repetitions(20),
                    &mut rng,
                );
                black_box(table.final_assignment())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_full_pipeline);
criterion_main!(benches);
