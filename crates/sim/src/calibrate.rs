//! Calibration: fitting platform parameters from observed timings.
//!
//! The paper's clusters "are specific to the underlying architecture and
//! run time settings; if the operating conditions are changed, the
//! measurements have to be repeated." When porting this methodology to a
//! new device, the first step is estimating its throughput and per-task
//! overhead from a handful of timing observations — this module does that
//! with closed-form ordinary least squares on the affine model
//! `time = overhead + flops / throughput`.

/// One calibration observation: a task of known FLOP volume and its
/// measured execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// FLOPs of the measured task.
    pub flops: u64,
    /// Measured wall time, seconds.
    pub time_s: f64,
}

/// Result of a throughput fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputFit {
    /// Estimated sustained throughput, FLOP/s.
    pub flops_per_s: f64,
    /// Estimated fixed per-task overhead, seconds (≥ 0 after clamping).
    pub overhead_s: f64,
    /// Coefficient of determination of the affine fit.
    pub r_squared: f64,
}

/// Error from [`fit_throughput`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer than two observations, or all FLOP volumes identical — the
    /// affine model is not identifiable.
    NotIdentifiable,
    /// A fitted slope was non-positive (noise dominates; measure bigger
    /// tasks or more repetitions).
    DegenerateSlope,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NotIdentifiable => {
                write!(f, "need ≥ 2 observations with distinct FLOP volumes")
            }
            CalibrationError::DegenerateSlope => {
                write!(f, "fitted slope non-positive; observations too noisy")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Ordinary least squares for `time = a + b·flops`; returns the
/// throughput `1/b` and overhead `a`.
pub fn fit_throughput(obs: &[Observation]) -> Result<ThroughputFit, CalibrationError> {
    if obs.len() < 2 {
        return Err(CalibrationError::NotIdentifiable);
    }
    let n = obs.len() as f64;
    let mean_x = obs.iter().map(|o| o.flops as f64).sum::<f64>() / n;
    let mean_y = obs.iter().map(|o| o.time_s).sum::<f64>() / n;
    let sxx: f64 = obs
        .iter()
        .map(|o| (o.flops as f64 - mean_x).powi(2))
        .sum();
    if sxx == 0.0 {
        return Err(CalibrationError::NotIdentifiable);
    }
    let sxy: f64 = obs
        .iter()
        .map(|o| (o.flops as f64 - mean_x) * (o.time_s - mean_y))
        .sum();
    let slope = sxy / sxx;
    if slope <= 0.0 {
        return Err(CalibrationError::DegenerateSlope);
    }
    let intercept = mean_y - slope * mean_x;

    let ss_tot: f64 = obs.iter().map(|o| (o.time_s - mean_y).powi(2)).sum();
    let ss_res: f64 = obs
        .iter()
        .map(|o| {
            let pred = intercept + slope * o.flops as f64;
            (o.time_s - pred).powi(2)
        })
        .sum();
    let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };

    Ok(ThroughputFit {
        flops_per_s: 1.0 / slope,
        overhead_s: intercept.max(0.0),
        r_squared,
    })
}

/// Fits link parameters (`latency`, `bandwidth`) from byte/time
/// observations with the same affine model.
pub fn fit_link(obs: &[(u64, f64)]) -> Result<(f64, f64), CalibrationError> {
    let as_obs: Vec<Observation> = obs
        .iter()
        .map(|&(bytes, t)| Observation {
            flops: bytes,
            time_s: t,
        })
        .collect();
    let fit = fit_throughput(&as_obs)?;
    Ok((fit.overhead_s, fit.flops_per_s)) // (latency, bytes/s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_affine_data_recovered() {
        // time = 1e-3 + flops / 1e9
        let obs: Vec<Observation> = [1_000_000u64, 5_000_000, 20_000_000, 100_000_000]
            .iter()
            .map(|&f| Observation {
                flops: f,
                time_s: 1e-3 + f as f64 / 1e9,
            })
            .collect();
        let fit = fit_throughput(&obs).unwrap();
        assert!((fit.flops_per_s - 1e9).abs() / 1e9 < 1e-9);
        assert!((fit.overhead_s - 1e-3).abs() < 1e-12);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_data_recovers_approximately() {
        let mut obs = Vec::new();
        for i in 1..=20u64 {
            let f = i * 10_000_000;
            let jitter = if i % 2 == 0 { 1.02 } else { 0.98 };
            obs.push(Observation {
                flops: f,
                time_s: (5e-4 + f as f64 / 2e9) * jitter,
            });
        }
        let fit = fit_throughput(&obs).unwrap();
        assert!((fit.flops_per_s - 2e9).abs() / 2e9 < 0.05, "{fit:?}");
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn too_few_observations_rejected() {
        assert_eq!(
            fit_throughput(&[Observation {
                flops: 1,
                time_s: 1.0
            }]),
            Err(CalibrationError::NotIdentifiable)
        );
    }

    #[test]
    fn identical_flops_rejected() {
        let obs = [
            Observation {
                flops: 1_000,
                time_s: 1.0,
            },
            Observation {
                flops: 1_000,
                time_s: 1.1,
            },
        ];
        assert_eq!(fit_throughput(&obs), Err(CalibrationError::NotIdentifiable));
    }

    #[test]
    fn negative_slope_rejected() {
        let obs = [
            Observation {
                flops: 1_000,
                time_s: 2.0,
            },
            Observation {
                flops: 2_000,
                time_s: 1.0,
            },
        ];
        assert_eq!(fit_throughput(&obs), Err(CalibrationError::DegenerateSlope));
    }

    #[test]
    fn overhead_clamped_to_zero() {
        // A slightly negative intercept from noise must clamp.
        let obs = [
            Observation {
                flops: 1_000_000,
                time_s: 0.9e-3,
            },
            Observation {
                flops: 2_000_000,
                time_s: 2.1e-3,
            },
        ];
        let fit = fit_throughput(&obs).unwrap();
        assert!(fit.overhead_s >= 0.0);
    }

    #[test]
    fn link_fit_maps_parameters() {
        let obs: Vec<(u64, f64)> = [1_000u64, 10_000, 100_000]
            .iter()
            .map(|&b| (b, 1e-4 + b as f64 / 1e9))
            .collect();
        let (latency, bw) = fit_link(&obs).unwrap();
        assert!((latency - 1e-4).abs() < 1e-10);
        assert!((bw - 1e9).abs() / 1e9 < 1e-9);
    }

    #[test]
    fn fit_against_simulated_platform() {
        // End-to-end: observe the quiet simulator, recover its device rate.
        use crate::device::{DeviceKind, DeviceSpec};
        use crate::executor::Platform;
        use crate::link::LinkSpec;
        use crate::noise::NoiseModel;
        use crate::task::{Loc, Task};
        use rand::prelude::*;

        let platform = Platform {
            device: DeviceSpec {
                name: "d".into(),
                kind: DeviceKind::EdgeCpu,
                peak_flops: 3.0e9,
                mem_capacity_bytes: u64::MAX,
                mem_pressure_penalty: 0.0,
                energy_per_flop: 0.0,
                idle_power_watts: 0.0,
                cost_per_second: 0.0,
                launch_overhead_s: 0.0,
            },
            accelerator: DeviceSpec {
                name: "a".into(),
                kind: DeviceKind::Gpu,
                peak_flops: 1e10,
                mem_capacity_bytes: u64::MAX,
                mem_pressure_penalty: 0.0,
                energy_per_flop: 0.0,
                idle_power_watts: 0.0,
                cost_per_second: 0.0,
                launch_overhead_s: 0.0,
            },
            link: LinkSpec {
                name: "l".into(),
                latency_s: 0.0,
                bandwidth_bytes_per_s: 1e9,
                energy_per_byte: 0.0,
            },
            context_switch_s: 0.0,
            device_noise: NoiseModel::None,
            accel_noise: NoiseModel::None,
            transfer_noise: NoiseModel::None,
        };
        let mut rng = StdRng::seed_from_u64(171);
        let obs: Vec<Observation> = [1_000_000u64, 10_000_000, 50_000_000]
            .iter()
            .map(|&f| {
                let task = Task {
                    name: "t".into(),
                    iterations: 1,
                    flops_per_iter: f,
                    offload_bytes_per_iter: 0,
                    return_bytes_per_iter: 0,
                    working_set_bytes: 0,
                    handoff_bytes: 0,
                };
                let rec = platform.execute(std::slice::from_ref(&task), &[Loc::Device], &mut rng);
                Observation {
                    flops: f,
                    time_s: rec.total_time_s,
                }
            })
            .collect();
        let fit = fit_throughput(&obs).unwrap();
        assert!((fit.flops_per_s - 3.0e9).abs() / 3.0e9 < 1e-9);
    }
}
