//! E5 — The Sec. IV speed-up claim: at n=10 the mean execution time of
//! alg_DDA is only ~0.002 s below alg_DDD (speed-up ≈ 1.05), and the
//! speed-up grows with n. Sweeps n and prints the series, including the
//! crossover below which offloading L3 does not pay.

use relperf_bench::header;
use relperf_workloads::experiment::Experiment;

fn main() {
    header("Speed-up of alg_DDA over alg_DDD vs loop length n");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>10}",
        "n", "DDD mean [s]", "DDA mean [s]", "delta [s]", "speed-up"
    );
    for n in [2usize, 5, 10, 25, 50, 100, 200] {
        let exp = Experiment::table1(n);
        let placement_of = |label: &str| {
            exp.placements
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, p)| p.clone())
                .unwrap()
        };
        let ddd = exp
            .platform
            .execute_noiseless(&exp.tasks, &placement_of("DDD"))
            .total_time_s;
        let dda = exp
            .platform
            .execute_noiseless(&exp.tasks, &placement_of("DDA"))
            .total_time_s;
        println!(
            "{:>6} {:>14.6} {:>14.6} {:>12.6} {:>10.3}{}",
            n,
            ddd,
            dda,
            ddd - dda,
            ddd / dda,
            if ddd / dda < 1.0 { "   (offload does not pay yet)" } else { "" }
        );
    }
    println!("\npaper reference at n=10: delta ≈ 0.002 s, speed-up ≈ 1.05");
}
