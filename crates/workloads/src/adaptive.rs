//! Adaptive measurement campaigns: measure → compare → cluster in waves,
//! stopping as soon as the clustering is trustworthy.
//!
//! The paper measures every algorithm a fixed, hand-picked `N` times
//! (N = 30 throughout Sec. V) and only then clusters. An
//! [`AdaptiveExperiment`] inverts that: it draws measurements in waves,
//! feeds them into a streaming [`ClusterSession`], and stops when the
//! session's [`ConvergenceCriterion`] declares the [`ScoreTable`] stable
//! — typically well before a conservative fixed budget would have been
//! spent.
//!
//! Determinism is preserved end to end:
//!
//! * Placement `i` draws from an RNG seeded `stream_seed(measure_seed, i)`
//!   whose state persists across waves — the concatenation of all waves is
//!   **bit-identical** to one batch
//!   [`measure_all_seeded`](crate::experiment::measure_all_seeded) call of
//!   the same total `n`, for any [`Parallelism`].
//! * Scoring inherits the session guarantee: at any wave the table equals
//!   the batch
//!   [`cluster_measurements_seeded`](crate::experiment::cluster_measurements_seeded)
//!   over the measurements drawn so far.
//!
//! So a fixed wave budget reproduces the batch pipeline exactly, and the
//! adaptive stop only decides *how many* waves to pay for.

use crate::experiment::{Experiment, MeasuredAlgorithm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relperf_core::cluster::{ClusterConfig, Clustering, Parallelism, ScoreTable};
use relperf_core::session::{ClusterSession, ConvergenceCriterion};
use relperf_measure::{stream_seed, ScratchThreeWayComparator};

/// How measurements are budgeted across waves, per algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveSchedule {
    /// Measurements per algorithm in the first wave (must cover the
    /// comparator's minimum useful sample size).
    pub initial: usize,
    /// Measurements per algorithm in every subsequent wave.
    pub wave: usize,
    /// Hard per-algorithm budget: no wave starts once this many
    /// measurements have been drawn for each algorithm.
    pub max_per_algorithm: usize,
}

impl Default for WaveSchedule {
    /// Waves of 5 after an initial 10, capped at 60 per algorithm (twice
    /// the paper's hand-picked N = 30).
    fn default() -> Self {
        WaveSchedule {
            initial: 10,
            wave: 5,
            max_per_algorithm: 60,
        }
    }
}

impl WaveSchedule {
    /// Validates the schedule, panicking with a descriptive message on
    /// nonsensical values.
    pub fn validate(&self) {
        assert!(self.initial > 0, "first wave must draw measurements");
        assert!(self.wave > 0, "waves must draw measurements");
        assert!(
            self.max_per_algorithm >= self.initial,
            "budget below the first wave"
        );
    }

    /// Size of the next wave given `drawn` measurements per algorithm so
    /// far; 0 once the budget is exhausted. The last wave is truncated to
    /// land exactly on the budget.
    pub fn next_wave(&self, drawn: usize) -> usize {
        if drawn >= self.max_per_algorithm {
            return 0;
        }
        let want = if drawn == 0 { self.initial } else { self.wave };
        want.min(self.max_per_algorithm - drawn)
    }
}

/// The per-placement measurement RNGs of a campaign under `measure_seed`:
/// placement `i` draws from a stream seeded `stream_seed(measure_seed, i)`
/// — exactly the streams
/// [`measure_all_seeded`](crate::experiment::measure_all_seeded) uses, so
/// wave-by-wave draws concatenate to the batch measurement bit for bit.
pub fn placement_rngs(measure_seed: u64, p: usize) -> Vec<StdRng> {
    (0..p)
        .map(|i| StdRng::seed_from_u64(stream_seed(measure_seed, i as u64)))
        .collect()
}

/// Draws one wave of `n` measurements per placement, advancing each
/// placement's RNG in place.
///
/// Placement `i` continues its own carried RNG: the state is cloned into
/// the worker, the wave drawn, and the advanced state written back — a
/// pure function of `(i, carried state)`, so any thread count yields the
/// same draws ([`Parallelism`]-invariant) and consecutive waves
/// concatenate to one uninterrupted stream. Shared by
/// [`AdaptiveExperiment::wave`] and the hosted service campaigns
/// (`relperf-service`), whose checkpoints carry these RNG states.
///
/// # Panics
/// Panics when `rngs.len()` differs from the experiment's placement count.
pub fn draw_wave(
    exp: &Experiment,
    rngs: &mut [StdRng],
    n: usize,
    parallelism: Parallelism,
) -> Vec<Vec<f64>> {
    assert_eq!(
        rngs.len(),
        exp.placements.len(),
        "one carried RNG per placement"
    );
    let shared: &[StdRng] = rngs;
    let waves: Vec<(Vec<f64>, StdRng)> =
        relperf_parallel::parallel_map_indexed(exp.placements.len(), parallelism, |i| {
            let mut rng = shared[i].clone();
            let (_, placement) = &exp.placements[i];
            let values: Vec<f64> = (0..n)
                .map(|_| exp.platform.execute(&exp.tasks, placement, &mut rng).total_time_s)
                .collect();
            (values, rng)
        });
    waves
        .into_iter()
        .zip(rngs.iter_mut())
        .map(|((values, advanced), slot)| {
            *slot = advanced;
            values
        })
        .collect()
}

/// A live adaptive campaign over one [`Experiment`]: per-placement RNG
/// streams, the streaming cluster session, and the wave budget.
///
/// Drive it with [`wave`](AdaptiveExperiment::wave) /
/// [`run_to_convergence`](AdaptiveExperiment::run_to_convergence), or use
/// the one-shot [`measure_until_converged_seeded`].
#[derive(Debug)]
pub struct AdaptiveExperiment<'a, C: ScratchThreeWayComparator + Sync> {
    experiment: &'a Experiment,
    session: ClusterSession<&'a C>,
    schedule: WaveSchedule,
    parallelism: Parallelism,
    /// Placement `i`'s measurement RNG, carried across waves so the
    /// concatenated draws equal one batch `measure_all_seeded` stream.
    rngs: Vec<StdRng>,
    /// Measurements drawn per algorithm so far (waves are uniform).
    drawn: usize,
}

impl<'a, C: ScratchThreeWayComparator + Sync> AdaptiveExperiment<'a, C> {
    /// Sets up a campaign. `measure_seed` addresses the per-placement
    /// measurement streams (as in
    /// [`measure_all_seeded`](crate::experiment::measure_all_seeded));
    /// `cluster_seed` addresses the clustering repetitions (as in
    /// [`cluster_measurements_seeded`](crate::experiment::cluster_measurements_seeded)).
    ///
    /// # Panics
    /// Panics when the experiment has no placements or the schedule /
    /// criterion / config are invalid.
    pub fn new(
        experiment: &'a Experiment,
        comparator: &'a C,
        config: ClusterConfig,
        criterion: ConvergenceCriterion,
        schedule: WaveSchedule,
        measure_seed: u64,
        cluster_seed: u64,
    ) -> Self {
        schedule.validate();
        let p = experiment.placements.len();
        let session =
            ClusterSession::with_criterion(p, comparator, config, cluster_seed, criterion);
        let rngs = placement_rngs(measure_seed, p);
        AdaptiveExperiment {
            experiment,
            session,
            schedule,
            parallelism: config.parallelism,
            rngs,
            drawn: 0,
        }
    }

    /// The streaming session (tables, convergence state, measurement
    /// counts).
    pub fn session(&self) -> &ClusterSession<&'a C> {
        &self.session
    }

    /// Measurements drawn per algorithm so far.
    pub fn measurements_per_algorithm(&self) -> usize {
        self.drawn
    }

    /// The carried per-placement measurement RNG states — what a campaign
    /// checkpoint must persist so a resumed campaign draws the exact
    /// continuation of every placement's stream (see
    /// [`rand::rngs::StdRng::from_state`]).
    pub fn rng_states(&self) -> Vec<[u64; 4]> {
        self.rngs.iter().map(StdRng::state).collect()
    }

    /// Measurements drawn across all algorithms so far.
    pub fn total_measurements(&self) -> usize {
        self.drawn * self.experiment.placements.len()
    }

    /// `true` once the session's criterion has been met.
    pub fn converged(&self) -> bool {
        self.session.converged()
    }

    /// `true` while the budget allows another wave.
    pub fn budget_remaining(&self) -> bool {
        self.schedule.next_wave(self.drawn) > 0
    }

    /// Draws the next wave of measurements for every placement (fanned
    /// out across threads, bit-identical for any [`Parallelism`]), ingests
    /// them, and re-scores the session with warm caches.
    ///
    /// # Panics
    /// Panics when the budget is already exhausted (check
    /// [`budget_remaining`](AdaptiveExperiment::budget_remaining)).
    pub fn wave(&mut self) -> &ScoreTable {
        let n = self.schedule.next_wave(self.drawn);
        assert!(n > 0, "measurement budget exhausted");
        let waves = draw_wave(self.experiment, &mut self.rngs, n, self.parallelism);
        for (i, values) in waves.iter().enumerate() {
            self.session
                .extend(i, values)
                .expect("simulated times are finite");
        }
        self.drawn += n;
        self.session.score()
    }

    /// Runs waves until the criterion is met or the budget is exhausted;
    /// returns `true` when the campaign converged.
    pub fn run_to_convergence(&mut self) -> bool {
        while !self.converged() && self.budget_remaining() {
            self.wave();
        }
        self.converged()
    }

    /// The measured algorithms in placement order — samples as drawn so
    /// far plus the noiseless accounting records, ready for
    /// [`profiles`](crate::experiment::profiles).
    pub fn measured(&self) -> Vec<MeasuredAlgorithm> {
        self.experiment
            .placements
            .iter()
            .enumerate()
            .map(|(i, (label, placement))| MeasuredAlgorithm {
                label: label.clone(),
                placement: placement.clone(),
                sample: self
                    .session
                    .sample(i)
                    .expect("wave() measured every placement")
                    .clone(),
                record: self.experiment.platform.execute_noiseless(&self.experiment.tasks, placement),
            })
            .collect()
    }
}

/// Everything a finished adaptive campaign produced.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Per-placement samples (as drawn) and accounting records.
    pub measured: Vec<MeasuredAlgorithm>,
    /// The final wave's score table.
    pub table: ScoreTable,
    /// The final wave's clustering.
    pub clustering: Clustering,
    /// Number of scored waves.
    pub waves: usize,
    /// Measurements drawn per algorithm.
    pub measurements_per_algorithm: usize,
    /// Measurements drawn in total (`per_algorithm × placements`).
    pub total_measurements: usize,
    /// Whether the criterion was met (vs. the budget running out).
    pub converged: bool,
}

/// One-shot adaptive pipeline — the streaming replacement for the
/// hand-picked-`N` sequence `measure_all_seeded(n)` →
/// `cluster_measurements_seeded`: measures wave by wave and stops as soon
/// as the clustering is stable under `criterion` (or `schedule` runs out
/// of budget).
///
/// # Examples
///
/// ```
/// use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
/// use relperf_workloads::adaptive::{measure_until_converged_seeded, WaveSchedule};
/// use relperf_workloads::experiment::Experiment;
/// use relperf_core::cluster::ClusterConfig;
/// use relperf_core::session::ConvergenceCriterion;
///
/// let experiment = Experiment::fig1();
/// let comparator = BootstrapComparator::with_config(
///     42,
///     BootstrapConfig { reps: 20, ..Default::default() },
/// );
/// let result = measure_until_converged_seeded(
///     &experiment,
///     &comparator,
///     ClusterConfig::with_repetitions(20),
///     ConvergenceCriterion::default(),
///     WaveSchedule { initial: 10, wave: 5, max_per_algorithm: 40 },
///     1234,
///     7,
/// );
/// assert!(result.measurements_per_algorithm <= 40);
/// assert_eq!(result.clustering.assignments().len(), 4);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn measure_until_converged_seeded<C: ScratchThreeWayComparator + Sync>(
    experiment: &Experiment,
    comparator: &C,
    config: ClusterConfig,
    criterion: ConvergenceCriterion,
    schedule: WaveSchedule,
    measure_seed: u64,
    cluster_seed: u64,
) -> AdaptiveResult {
    let mut campaign = AdaptiveExperiment::new(
        experiment,
        comparator,
        config,
        criterion,
        schedule,
        measure_seed,
        cluster_seed,
    );
    let converged = campaign.run_to_convergence();
    let table = campaign
        .session()
        .table()
        .expect("at least one wave ran")
        .clone();
    AdaptiveResult {
        measured: campaign.measured(),
        clustering: table.final_assignment(),
        table,
        waves: campaign.session().waves(),
        measurements_per_algorithm: campaign.measurements_per_algorithm(),
        total_measurements: campaign.total_measurements(),
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{cluster_measurements_seeded, measure_all_seeded};
    use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};

    fn comparator() -> BootstrapComparator {
        BootstrapComparator::with_config(
            5,
            BootstrapConfig {
                reps: 20,
                ..Default::default()
            },
        )
    }

    #[test]
    fn schedule_next_wave_budgeting() {
        let s = WaveSchedule {
            initial: 10,
            wave: 4,
            max_per_algorithm: 17,
        };
        assert_eq!(s.next_wave(0), 10);
        assert_eq!(s.next_wave(10), 4);
        assert_eq!(s.next_wave(14), 3, "last wave truncates to the budget");
        assert_eq!(s.next_wave(17), 0);
        assert_eq!(s.next_wave(99), 0);
    }

    #[test]
    #[should_panic(expected = "first wave")]
    fn schedule_rejects_empty_first_wave() {
        WaveSchedule {
            initial: 0,
            wave: 1,
            max_per_algorithm: 10,
        }
        .validate();
    }

    /// The headline determinism contract: a fixed wave budget reproduces
    /// the batch pipeline bit for bit — measurements and score table.
    #[test]
    fn fixed_budget_campaign_is_bit_identical_to_batch() {
        let exp = Experiment::fig1();
        let cmp = comparator();
        let config = ClusterConfig::with_repetitions(30);
        // Never converges: forces the campaign to spend the whole budget.
        let never = ConvergenceCriterion {
            stable_waves: usize::MAX,
            score_tol: 0.0,
        };
        let schedule = WaveSchedule {
            initial: 8,
            wave: 5,
            max_per_algorithm: 23, // 8 + 5 + 5 + 5
        };
        let result =
            measure_until_converged_seeded(&exp, &cmp, config, never, schedule, 77, 13);
        assert!(!result.converged);
        assert_eq!(result.measurements_per_algorithm, 23);
        assert_eq!(result.waves, 4);

        let batch_measured = measure_all_seeded(&exp, 23, 77, Parallelism::auto());
        for (a, b) in result.measured.iter().zip(&batch_measured) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.sample, b.sample, "label {}", a.label);
        }
        let batch_table = cluster_measurements_seeded(&batch_measured, &cmp, config, 13);
        assert_eq!(result.table, batch_table);
    }

    #[test]
    fn campaign_is_parallelism_invariant() {
        let exp = Experiment::fig1();
        let cmp = comparator();
        let criterion = ConvergenceCriterion::default();
        let schedule = WaveSchedule {
            initial: 10,
            wave: 5,
            max_per_algorithm: 30,
        };
        let run = |threads: usize| {
            let config = ClusterConfig {
                repetitions: 30,
                parallelism: Parallelism::with_threads(threads),
                ..Default::default()
            };
            measure_until_converged_seeded(&exp, &cmp, config, criterion, schedule, 5, 6)
        };
        let reference = run(1);
        for threads in [0usize, 3] {
            let got = run(threads);
            assert_eq!(got.table, reference.table, "threads={threads}");
            assert_eq!(
                got.measurements_per_algorithm,
                reference.measurements_per_algorithm
            );
            assert_eq!(got.waves, reference.waves);
        }
    }

    #[test]
    fn adaptive_stops_early_on_separated_distributions() {
        // Fig. 1's platform separates AD/AA/(DD~DA) clearly; the default
        // criterion should stop well under the paper's N = 30.
        let exp = Experiment::fig1();
        let cmp = comparator();
        let result = measure_until_converged_seeded(
            &exp,
            &cmp,
            ClusterConfig::with_repetitions(40),
            ConvergenceCriterion::default(),
            WaveSchedule {
                initial: 10,
                wave: 5,
                max_per_algorithm: 60,
            },
            11,
            13,
        );
        assert!(result.converged, "clear separation must converge in budget");
        assert!(
            result.measurements_per_algorithm < 60,
            "converged campaigns stop before the cap"
        );
        // And the structure is the paper's.
        let idx = |l: &str| result.measured.iter().position(|m| m.label == l).unwrap();
        let rank = |l: &str| result.clustering.assignment(idx(l)).rank;
        assert_eq!(rank("AD"), 1);
        assert_eq!(rank("DD"), rank("DA"));
    }
}
