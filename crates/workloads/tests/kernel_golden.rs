//! Kernel-engine goldens: the *real* (non-simulated) Procedure 5/6
//! workloads must return the **same penalty, bit for bit**, whichever
//! kernel engine computes them — the swap from naive to blocked/parallel
//! kernels changes only how fast the measured workload runs, never what
//! the experiment observes. A pinned constant guards the whole lineage
//! (RNG stream + fused kernel arithmetic) against silent drift.

use rand::prelude::*;
use relperf_linalg::{KernelEngine, Parallelism};
use relperf_workloads::scientific_code::{run_real_custom, run_real_custom_with};

const SEED: u64 = 20_260_730;
const SIZES: [usize; 3] = [16, 24, 32];
const ITERS: usize = 2;

fn engines() -> Vec<KernelEngine> {
    vec![
        KernelEngine::Reference,
        KernelEngine::Blocked,
        KernelEngine::Parallel(Parallelism::serial()),
        KernelEngine::Parallel(Parallelism::with_threads(3)),
        KernelEngine::Parallel(Parallelism {
            threads: 2,
            chunk: 1,
        }),
    ]
}

#[test]
fn golden_scientific_code_penalty_identical_across_engines() {
    let reference = run_real_custom_with(
        &mut StdRng::seed_from_u64(SEED),
        &SIZES,
        ITERS,
        KernelEngine::Reference,
    )
    .unwrap();
    for engine in engines() {
        let p = run_real_custom_with(&mut StdRng::seed_from_u64(SEED), &SIZES, ITERS, engine)
            .unwrap();
        assert_eq!(
            p.to_bits(),
            reference.to_bits(),
            "engine {} diverged: {p} vs {reference}",
            engine.label()
        );
    }
    // The default path is the blocked engine and must agree too.
    let p = run_real_custom(&mut StdRng::seed_from_u64(SEED), &SIZES, ITERS).unwrap();
    assert_eq!(p.to_bits(), reference.to_bits());
}

#[test]
fn golden_scientific_code_penalty_pinned() {
    // Absolute regression pin, captured from the reference engine: any
    // change to the RNG stream, the fused element op, or the kernel
    // accumulation order shows up here before it can silently invalidate
    // measured experiments.
    let p = run_real_custom(&mut StdRng::seed_from_u64(SEED), &SIZES, ITERS).unwrap();
    assert_eq!(
        p.to_bits(),
        PINNED_PENALTY_BITS,
        "seeded penalty drifted: got {p} ({:#x})",
        p.to_bits()
    );
}

/// `f64::to_bits` of the seeded `[16, 24, 32] x 2` penalty
/// (`298.64841200723697`; rerun the pin test to regenerate after an
/// *intentional* arithmetic change).
const PINNED_PENALTY_BITS: u64 = 0x4072_aa5f_e544_d6aa;

#[test]
fn golden_mathtask_penalty_identical_across_engines() {
    use relperf_workloads::mathtask::run_real_with;
    let reference = run_real_with(
        &mut StdRng::seed_from_u64(SEED ^ 1),
        40,
        3,
        0.5,
        KernelEngine::Reference,
    )
    .unwrap();
    for engine in engines() {
        let p = run_real_with(&mut StdRng::seed_from_u64(SEED ^ 1), 40, 3, 0.5, engine).unwrap();
        assert_eq!(p.to_bits(), reference.to_bits(), "engine {}", engine.label());
    }
}

#[test]
fn table1_large_reaches_512() {
    let e = relperf_workloads::experiment::Experiment::table1_large(2);
    assert_eq!(e.tasks.len(), 3);
    assert_eq!(e.placements.len(), 8);
    // Priced by the same shared formula as the real kernels at n = 512.
    assert_eq!(
        e.tasks[2].flops_per_iter,
        relperf_linalg::flops::rls_iteration(512)
    );
}
