//! Singular value decomposition via the symmetric eigendecomposition of
//! the Gram matrix.
//!
//! For the moderate sizes of the paper's workloads (`n ≤ 300`), computing
//! `V, Σ²` from `AᵀA` with the Jacobi eigensolver and recovering
//! `U = A V Σ⁻¹` is accurate and keeps the implementation self-contained.
//! Used for rank diagnostics of the RLS operands and general condition
//! analysis of rectangular matrices.

use crate::eigen::symmetric_eigen;
use crate::error::{LinalgError, Result};
use crate::gemm::{gemm_blocked, syrk_ata};
use crate::matrix::Matrix;

/// A thin SVD `A = U·Σ·Vᵀ` of an `m x n` matrix with `m ≥ n`:
/// `U` is `m x n` with orthonormal columns (where σ > 0), `Σ` diagonal
/// `n x n`, `V` orthogonal `n x n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m x n`).
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n x n`, columns).
    pub v: Matrix,
}

/// Relative threshold below which a singular value is treated as zero by
/// [`Svd::rank`]. The Gram-matrix route squares the conditioning, so the
/// eigensolver's ~1e-12 relative accuracy becomes ~1e-6 on the σ scale;
/// the threshold sits above that noise floor.
pub const RANK_TOL: f64 = 1e-6;

impl Svd {
    /// Computes the thin SVD. Requires `m ≥ n`; transpose first otherwise.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "svd",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let gram = syrk_ata(a);
        let eig = symmetric_eigen(&gram)?;
        // Eigenvalues of AᵀA are σ², descending by construction.
        let sigma: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.vectors;
        // U = A·V·Σ⁻¹, computed columnwise; zero-σ columns get zero vectors.
        let av = gemm_blocked(a, &v)?;
        let mut u = Matrix::zeros(m, n);
        let scale = sigma.first().copied().unwrap_or(0.0);
        for j in 0..n {
            if sigma[j] > RANK_TOL * scale.max(1.0) {
                for i in 0..m {
                    u[(i, j)] = av[(i, j)] / sigma[j];
                }
            }
        }
        Ok(Svd { u, sigma, v })
    }

    /// Numerical rank: singular values above `RANK_TOL · σ_max`.
    pub fn rank(&self) -> usize {
        let max = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma
            .iter()
            .filter(|&&s| s > RANK_TOL * max.max(1.0))
            .count()
    }

    /// Spectral (2-)norm: the largest singular value.
    pub fn norm2(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Spectral condition number `σ_max / σ_min` (infinite when rank
    /// deficient).
    pub fn condition_number(&self) -> f64 {
        let max = self.norm2();
        let min = self.sigma.last().copied().unwrap_or(0.0);
        if min <= RANK_TOL * max.max(1.0) {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Reconstructs `A` from the factors (testing / low-rank truncation).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let sv = Matrix::from_diag(&self.sigma);
        gemm_blocked(&gemm_blocked(&self.u, &sv)?, &self.v.transpose())
    }

    /// Best rank-`k` approximation (truncated SVD).
    pub fn truncate(&self, k: usize) -> Result<Matrix> {
        let k = k.min(self.sigma.len());
        let mut sigma = self.sigma.clone();
        for s in sigma.iter_mut().skip(k) {
            *s = 0.0;
        }
        let sv = Matrix::from_diag(&sigma);
        gemm_blocked(&gemm_blocked(&self.u, &sv)?, &self.v.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use crate::random::random_matrix;
    use rand::prelude::*;

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = Svd::factor(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-8);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-8);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-8);
        assert_eq!(svd.rank(), 3);
    }

    #[test]
    fn reconstruction() {
        let mut rng = StdRng::seed_from_u64(231);
        let a = random_matrix(&mut rng, 15, 9);
        let svd = Svd::factor(&a).unwrap();
        let rec = svd.reconstruct().unwrap();
        assert!(
            rec.approx_eq(&a, 1e-6),
            "max diff {}",
            rec.try_sub(&a).unwrap().max_abs()
        );
    }

    #[test]
    fn u_and_v_orthonormal() {
        let mut rng = StdRng::seed_from_u64(232);
        let a = random_matrix(&mut rng, 12, 8);
        let svd = Svd::factor(&a).unwrap();
        let utu = gemm_naive(&svd.u.transpose(), &svd.u).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(8), 1e-6));
        let vtv = gemm_naive(&svd.v.transpose(), &svd.v).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(8), 1e-7));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let mut rng = StdRng::seed_from_u64(233);
        let a = random_matrix(&mut rng, 20, 10);
        let svd = Svd::factor(&a).unwrap();
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn rank_deficiency_detected() {
        // Rank-1 outer product.
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = Svd::factor(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!(svd.condition_number().is_infinite());
    }

    #[test]
    fn frobenius_norm_equals_sigma_norm() {
        let mut rng = StdRng::seed_from_u64(234);
        let a = random_matrix(&mut rng, 10, 10);
        let svd = Svd::factor(&a).unwrap();
        let fro = a.frobenius_norm();
        let sig: f64 = svd.sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((fro - sig).abs() < 1e-6 * fro);
    }

    #[test]
    fn truncation_is_best_approximation_direction() {
        let mut rng = StdRng::seed_from_u64(235);
        let a = random_matrix(&mut rng, 10, 6);
        let svd = Svd::factor(&a).unwrap();
        // Error of rank-k approximation shrinks with k and equals the
        // tail singular-value mass.
        let mut last_err = f64::INFINITY;
        for k in 1..=6 {
            let err = svd.truncate(k).unwrap().try_sub(&a).unwrap().frobenius_norm();
            assert!(err <= last_err + 1e-9);
            let tail: f64 = svd.sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
            assert!((err - tail).abs() < 1e-6 * (tail + 1.0));
            last_err = err;
        }
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(Svd::factor(&Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn spectral_norm_bounds_frobenius() {
        let mut rng = StdRng::seed_from_u64(236);
        let a = random_matrix(&mut rng, 9, 9);
        let svd = Svd::factor(&a).unwrap();
        assert!(svd.norm2() <= a.frobenius_norm() + 1e-9);
    }
}
