//! Three-way bubble sort with performance-class rank updates
//! (Procedures 1–3 of the paper).
//!
//! The sort operates on algorithm *indices* `0..p`; the comparator receives
//! a pair of indices and returns the [`Outcome`] of comparing the first
//! against the second (`Better` = first has lower cost). Working on indices
//! keeps the algorithm identity concerns (labels, samples) out of the core
//! procedure and lets callers memoize or script comparisons freely.
//!
//! Ranks are *positional*: `ranks[k]` is the performance class of the
//! algorithm currently at position `k` of the sequence. The invariants
//! maintained after every comparison (and checked by debug assertions and
//! property tests) are:
//!
//! * `ranks[0] == 1`,
//! * ranks are non-decreasing along the sequence,
//! * adjacent ranks differ by at most 1.

use relperf_measure::Outcome;

/// Final state of a sort: the algorithm indices in performance order and
/// the positional rank (performance class, 1-based) of each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortState {
    /// Algorithm indices, best first.
    pub sequence: Vec<usize>,
    /// `ranks[k]` is the class of `sequence[k]`; starts at 1,
    /// non-decreasing, adjacent steps ≤ 1.
    pub ranks: Vec<usize>,
}

impl SortState {
    /// Initial state for the identity sequence `0..p` with ranks `1..=p`
    /// (line 1–4 of Procedure 1).
    pub fn initial(p: usize) -> Self {
        SortState {
            sequence: (0..p).collect(),
            ranks: (1..=p).collect(),
        }
    }

    /// Initial state for an arbitrary starting sequence (Procedure 4
    /// shuffles the set before each clustering repetition).
    pub fn from_sequence(sequence: Vec<usize>) -> Self {
        let p = sequence.len();
        SortState {
            sequence,
            ranks: (1..=p).collect(),
        }
    }

    /// Number of algorithms.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// `true` when the state holds no algorithms.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Number of performance classes `k` in the current state.
    pub fn num_classes(&self) -> usize {
        self.ranks.last().copied().unwrap_or(0)
    }

    /// Rank (performance class) of algorithm `alg`, or `None` if absent.
    pub fn rank_of(&self, alg: usize) -> Option<usize> {
        self.sequence
            .iter()
            .position(|&a| a == alg)
            .map(|pos| self.ranks[pos])
    }

    /// The members of class `r` (1-based) in sequence order.
    pub fn class_members(&self, r: usize) -> Vec<usize> {
        self.sequence
            .iter()
            .zip(&self.ranks)
            .filter(|&(_, &rank)| rank == r)
            .map(|(&a, _)| a)
            .collect()
    }

    fn assert_invariants(&self) {
        debug_assert!(self.ranks.is_empty() || self.ranks[0] == 1, "first rank must be 1");
        for w in self.ranks.windows(2) {
            debug_assert!(w[1] >= w[0], "ranks must be non-decreasing: {:?}", self.ranks);
            debug_assert!(w[1] - w[0] <= 1, "rank steps must be ≤ 1: {:?}", self.ranks);
        }
    }
}

/// One comparison step of the sort, for trace output (paper Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortStep {
    /// Positions compared, `(j, j+1)`.
    pub positions: (usize, usize),
    /// Algorithm indices compared, in pre-comparison order (left, right).
    pub algorithms: (usize, usize),
    /// Comparator outcome for (left vs right).
    pub outcome: Outcome,
    /// Whether the pair was swapped.
    pub swapped: bool,
    /// Full state after applying the update rules.
    pub state_after: SortState,
}

/// Applies one comparison at positions `(j, j+1)` to `state`:
/// `UpdateAlgIndices` (Procedure 2) followed by `UpdateAlgRanks`
/// (Procedure 3). Returns whether a swap occurred.
///
/// # Panics
/// Panics when `j + 1` is out of bounds.
pub fn apply_comparison(state: &mut SortState, j: usize, outcome: Outcome) -> bool {
    assert!(j + 1 < state.sequence.len(), "comparison position out of bounds");
    let swapped = match outcome {
        Outcome::Equivalent => {
            // Rule 2a (equivalent): merge the classes by pulling every
            // later rank down by one.
            if state.ranks[j] != state.ranks[j + 1] {
                for r in &mut state.ranks[j + 1..] {
                    *r -= 1;
                }
            }
            false
        }
        Outcome::Worse => {
            // Procedure 2: the left algorithm lost — swap positions (ranks
            // stay positional), then apply the post-swap rank rules of
            // rule 2b.
            state.sequence.swap(j, j + 1);
            apply_post_swap_rules(state, j);
            true
        }
        Outcome::Better => {
            // Rule 2a: "If the comparison is 'better', the ranks are not
            // updated." (The sequence is already in the right order.)
            false
        }
    };
    state.assert_invariants();
    swapped
}

/// Procedure 3's post-swap rules (prose rule 2b), with the winner now
/// sitting at position `j` and the loser at `j + 1`:
///
/// 1. ranks differ **and** the winner shares its predecessor's rank →
///    the loser's class merges up (ranks of `j+1..` decrease by 1);
/// 2. ranks equal **and** the winner's rank differs from its predecessor's
///    (or the winner is at the head) → the winner has beaten the top of its
///    own class and is promoted by pushing `j+1..` down (ranks increase
///    by 1).
fn apply_post_swap_rules(state: &mut SortState, j: usize) {
    let ranks = &mut state.ranks;
    let same_as_pred = j > 0 && ranks[j] == ranks[j - 1];
    if ranks[j] != ranks[j + 1] {
        if same_as_pred {
            for r in &mut ranks[j + 1..] {
                *r -= 1;
            }
        }
    } else if j == 0 || !same_as_pred {
        for r in &mut ranks[j + 1..] {
            *r += 1;
        }
    }
}

/// Procedure 1 (`SortAlgs`): full bubble sort of `initial` using `cmp`,
/// where `cmp(a, b)` compares algorithm index `a` against `b`.
pub fn sort_from(initial: SortState, mut cmp: impl FnMut(usize, usize) -> Outcome) -> SortState {
    let mut state = initial;
    let p = state.len();
    if p < 2 {
        return state;
    }
    for i in 1..p {
        for j in 0..(p - i) {
            let (a, b) = (state.sequence[j], state.sequence[j + 1]);
            let outcome = cmp(a, b);
            apply_comparison(&mut state, j, outcome);
        }
    }
    state
}

/// Sorts the identity sequence `0..p`.
///
/// # Examples
///
/// ```
/// use relperf_core::sort::sort;
/// use relperf_core::Outcome;
///
/// // Algorithm costs: index 1 is fastest, 0 and 2 tie for last.
/// let cost: [f64; 3] = [5.0, 1.0, 5.0];
/// let state = sort(3, |a, b| {
///     if (cost[a] - cost[b]).abs() < 0.5 {
///         Outcome::Equivalent
///     } else if cost[a] < cost[b] {
///         Outcome::Better
///     } else {
///         Outcome::Worse
///     }
/// });
/// assert_eq!(state.rank_of(1), Some(1));     // fastest: class 1
/// assert_eq!(state.rank_of(0), state.rank_of(2)); // tied pair merged
/// ```
pub fn sort(p: usize, cmp: impl FnMut(usize, usize) -> Outcome) -> SortState {
    sort_from(SortState::initial(p), cmp)
}

/// Like [`sort_from`], but records every comparison step — used to
/// regenerate the paper's Fig. 2 walkthrough.
pub fn sort_with_trace(
    initial: SortState,
    mut cmp: impl FnMut(usize, usize) -> Outcome,
) -> (SortState, Vec<SortStep>) {
    let mut state = initial;
    let p = state.len();
    let mut steps = Vec::new();
    if p < 2 {
        return (state, steps);
    }
    for i in 1..p {
        for j in 0..(p - i) {
            let (a, b) = (state.sequence[j], state.sequence[j + 1]);
            let outcome = cmp(a, b);
            let swapped = apply_comparison(&mut state, j, outcome);
            steps.push(SortStep {
                positions: (j, j + 1),
                algorithms: (a, b),
                outcome,
                swapped,
                state_after: state.clone(),
            });
        }
    }
    (state, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Outcome::{Better, Equivalent, Worse};

    /// Comparator from a total order with equivalence classes: algorithms
    /// map to a level; equal levels are equivalent, lower level is better.
    fn level_cmp(levels: &[usize]) -> impl FnMut(usize, usize) -> Outcome + '_ {
        move |a, b| match levels[a].cmp(&levels[b]) {
            std::cmp::Ordering::Less => Better,
            std::cmp::Ordering::Greater => Worse,
            std::cmp::Ordering::Equal => Equivalent,
        }
    }

    #[test]
    fn initial_state_shape() {
        let s = SortState::initial(4);
        assert_eq!(s.sequence, vec![0, 1, 2, 3]);
        assert_eq!(s.ranks, vec![1, 2, 3, 4]);
        assert_eq!(s.num_classes(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(sort(0, |_, _| Better).sequence.is_empty());
        let s = sort(1, |_, _| Better);
        assert_eq!(s.sequence, vec![0]);
        assert_eq!(s.ranks, vec![1]);
    }

    #[test]
    fn all_distinct_total_order() {
        // Levels reversed: alg 0 is the slowest.
        let levels = [3, 2, 1, 0];
        let s = sort(4, level_cmp(&levels));
        assert_eq!(s.sequence, vec![3, 2, 1, 0]);
        assert_eq!(s.ranks, vec![1, 2, 3, 4]);
        assert_eq!(s.num_classes(), 4);
    }

    #[test]
    fn all_equivalent_single_class() {
        let levels = [0, 0, 0, 0];
        let s = sort(4, level_cmp(&levels));
        assert_eq!(s.ranks, vec![1, 1, 1, 1]);
        assert_eq!(s.num_classes(), 1);
    }

    #[test]
    fn two_classes_merge_correctly() {
        // Algorithms 0,2 fast; 1,3 slow.
        let levels = [0, 1, 0, 1];
        let s = sort(4, level_cmp(&levels));
        assert_eq!(s.num_classes(), 2);
        let mut c1 = s.class_members(1);
        c1.sort_unstable();
        assert_eq!(c1, vec![0, 2]);
        let mut c2 = s.class_members(2);
        c2.sort_unstable();
        assert_eq!(c2, vec![1, 3]);
    }

    #[test]
    fn paper_fig2_walkthrough_exact() {
        // Paper notation: indices 0=DD, 1=AA, 2=DA, 3=AD; initial sequence
        // (DD,1)(AA,2)(DA,3)(AD,4). True relations from Fig. 1b:
        // AD best; AA second; DD ~ DA equivalent and worst.
        let outcome = |a: usize, b: usize| -> Outcome {
            let class = |x: usize| match x {
                3 => 0, // AD
                1 => 1, // AA
                0 | 2 => 2, // DD, DA
                _ => unreachable!(),
            };
            match class(a).cmp(&class(b)) {
                std::cmp::Ordering::Less => Better,
                std::cmp::Ordering::Greater => Worse,
                std::cmp::Ordering::Equal => {
                    if a == b {
                        Equivalent
                    } else if (a == 0 && b == 2) || (a == 2 && b == 0) {
                        Equivalent // DD ~ DA
                    } else {
                        Equivalent
                    }
                }
            }
        };
        let (final_state, steps) = sort_with_trace(SortState::initial(4), outcome);

        // Step 1: DD vs AA → DD worse → swap, no rank change.
        assert_eq!(steps[0].algorithms, (0, 1));
        assert_eq!(steps[0].outcome, Worse);
        assert!(steps[0].swapped);
        assert_eq!(steps[0].state_after.sequence, vec![1, 0, 2, 3]);
        assert_eq!(steps[0].state_after.ranks, vec![1, 2, 3, 4]);

        // Step 2: DD vs DA → equivalent → ranks after DD decrease.
        assert_eq!(steps[1].algorithms, (0, 2));
        assert_eq!(steps[1].outcome, Equivalent);
        assert_eq!(steps[1].state_after.ranks, vec![1, 2, 2, 3]);

        // Step 3: DA vs AD → DA worse → swap; AD now shares DD's rank, so
        // DA's rank merges down: DD, AD, DA all rank 2.
        assert_eq!(steps[2].algorithms, (2, 3));
        assert_eq!(steps[2].outcome, Worse);
        assert!(steps[2].swapped);
        assert_eq!(steps[2].state_after.sequence, vec![1, 0, 3, 2]);
        assert_eq!(steps[2].state_after.ranks, vec![1, 2, 2, 2]);

        // Pass 2, first comparison: AA vs DD → better, no change.
        assert_eq!(steps[3].algorithms, (1, 0));
        assert_eq!(steps[3].outcome, Better);
        assert!(!steps[3].swapped);
        assert_eq!(steps[3].state_after.ranks, vec![1, 2, 2, 2]);

        // Paper step 4: DD vs AD → DD worse → swap; AD beat the top of its
        // class, successors pushed down.
        assert_eq!(steps[4].algorithms, (0, 3));
        assert_eq!(steps[4].outcome, Worse);
        assert!(steps[4].swapped);
        assert_eq!(steps[4].state_after.sequence, vec![1, 3, 0, 2]);
        assert_eq!(steps[4].state_after.ranks, vec![1, 2, 3, 3]);

        // Final state: ⟨(AD,1),(AA,2),(DD,3),(DA,3)⟩.
        assert_eq!(final_state.sequence, vec![3, 1, 0, 2]);
        assert_eq!(final_state.ranks, vec![1, 2, 3, 3]);
        assert_eq!(final_state.num_classes(), 3);
        assert_eq!(final_state.rank_of(3), Some(1)); // AD
        assert_eq!(final_state.rank_of(1), Some(2)); // AA
        assert_eq!(final_state.rank_of(0), Some(3)); // DD
        assert_eq!(final_state.rank_of(2), Some(3)); // DA
    }

    #[test]
    fn strict_order_is_initial_order_independent() {
        // With no equivalences the procedure is a classic bubble sort and
        // the result cannot depend on the starting permutation.
        let levels = [4, 0, 2, 3, 1];
        let reference = sort(5, level_cmp(&levels));
        assert_eq!(reference.sequence, vec![1, 4, 2, 3, 0]);
        assert_eq!(reference.ranks, vec![1, 2, 3, 4, 5]);
        let perms: Vec<Vec<usize>> = vec![
            vec![4, 3, 2, 1, 0],
            vec![1, 3, 0, 4, 2],
            vec![2, 0, 4, 1, 3],
        ];
        for perm in perms {
            let s = sort_from(SortState::from_sequence(perm.clone()), level_cmp(&levels));
            assert_eq!(s.sequence, reference.sequence, "initial {perm:?}");
            assert_eq!(s.ranks, reference.ranks, "initial {perm:?}");
        }
    }

    #[test]
    fn equivalence_merging_can_depend_on_initial_order() {
        // The shrinking bubble-sort schedule stops comparing tail positions,
        // so equivalent algorithms that end up non-adjacent early may never
        // merge. This order sensitivity is exactly why Procedure 4 repeats
        // the clustering over shuffles and reports *relative scores* instead
        // of a single assignment.
        let levels = [2, 0, 1, 1, 0];
        let mut outcomes = std::collections::HashSet::new();
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
            vec![1, 3, 0, 4, 2],
            vec![2, 0, 4, 1, 3],
        ];
        for perm in perms {
            let s = sort_from(SortState::from_sequence(perm), level_cmp(&levels));
            // Whatever the ranks, the sequence must respect the true order.
            for w in 0..4 {
                assert!(
                    levels[s.sequence[w]] <= levels[s.sequence[w + 1]],
                    "sequence violates the underlying order: {:?}",
                    s.sequence
                );
            }
            outcomes.insert((s.sequence.clone(), s.ranks.clone()));
        }
        assert!(!outcomes.is_empty());
    }

    #[test]
    fn rank_of_missing_algorithm_is_none() {
        let s = sort(3, |_, _| Equivalent);
        assert_eq!(s.rank_of(7), None);
    }

    #[test]
    fn class_members_ordering() {
        let levels = [1, 0, 1];
        let s = sort(3, level_cmp(&levels));
        assert_eq!(s.class_members(1), vec![1]);
        let mut c2 = s.class_members(2);
        c2.sort_unstable();
        assert_eq!(c2, vec![0, 2]);
        assert!(s.class_members(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_comparison_bounds_checked() {
        let mut s = SortState::initial(2);
        apply_comparison(&mut s, 1, Better);
    }

    #[test]
    fn trace_length_is_quadratic() {
        let (_, steps) = sort_with_trace(SortState::initial(5), |_, _| Better);
        assert_eq!(steps.len(), 4 + 3 + 2 + 1);
    }

    #[test]
    fn equivalent_on_equal_ranks_is_noop() {
        let mut s = SortState {
            sequence: vec![0, 1],
            ranks: vec![1, 1],
        };
        let swapped = apply_comparison(&mut s, 0, Equivalent);
        assert!(!swapped);
        assert_eq!(s.ranks, vec![1, 1]);
    }

    #[test]
    fn better_never_updates_ranks() {
        // Rule 2a: a "better" outcome leaves both sequence and ranks alone,
        // whatever the neighbouring rank structure looks like.
        for ranks in [vec![1, 2, 3], vec![1, 1, 2], vec![1, 1, 1], vec![1, 2, 2]] {
            let mut s = SortState {
                sequence: vec![0, 1, 2],
                ranks: ranks.clone(),
            };
            let swapped = apply_comparison(&mut s, 1, Better);
            assert!(!swapped);
            assert_eq!(s.sequence, vec![0, 1, 2]);
            assert_eq!(s.ranks, ranks);
        }
    }

    #[test]
    fn worse_swap_merges_loser_when_winner_tied_with_predecessor() {
        // Post-swap rule 1: winner lands at j=1 sharing its predecessor's
        // rank; the loser's class merges up (paper walkthrough step 3).
        let mut s = SortState {
            sequence: vec![0, 1, 2],
            ranks: vec![1, 1, 2],
        };
        let swapped = apply_comparison(&mut s, 1, Worse);
        assert!(swapped);
        assert_eq!(s.sequence, vec![0, 2, 1]);
        assert_eq!(s.ranks, vec![1, 1, 1]);
    }

    #[test]
    fn winner_promotion_at_head_of_sequence() {
        // Swap at j=0 with equal ranks after swap: winner gets its own class.
        let mut s = SortState {
            sequence: vec![0, 1, 2],
            ranks: vec![1, 1, 1],
        };
        let swapped = apply_comparison(&mut s, 0, Worse);
        assert!(swapped);
        assert_eq!(s.sequence, vec![1, 0, 2]);
        assert_eq!(s.ranks, vec![1, 2, 2]);
    }
}
