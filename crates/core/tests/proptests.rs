//! Property-based tests of the three-way bubble sort and clustering.
//!
//! The crucial robustness property: the rank invariants must hold for ANY
//! comparator — including inconsistent, non-transitive, adversarial ones —
//! because real bootstrap comparisons are stochastic and may contradict
//! themselves between passes.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::prelude::*;
use relperf_core::cluster::{relative_scores, ClusterConfig};
use relperf_core::similarity::{adjusted_rand_index, rand_index};
use relperf_core::sort::{sort, sort_from, SortState};
use relperf_core::triplet::enumerate_triplets;
use relperf_measure::Outcome;

fn outcome_from_u8(x: u8) -> Outcome {
    match x % 3 {
        0 => Outcome::Better,
        1 => Outcome::Worse,
        _ => Outcome::Equivalent,
    }
}

fn assert_rank_invariants(state: &SortState) {
    if state.ranks.is_empty() {
        return;
    }
    assert_eq!(state.ranks[0], 1, "first rank must be 1: {:?}", state.ranks);
    for w in state.ranks.windows(2) {
        assert!(w[1] >= w[0], "ranks must be non-decreasing: {:?}", state.ranks);
        assert!(w[1] - w[0] <= 1, "rank steps must be ≤ 1: {:?}", state.ranks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_adversarial_comparators(
        p in 2usize..20,
        script in vec(0u8..3, 0..400),
        seed in 0u64..1_000,
    ) {
        // The comparator replays an arbitrary outcome script, then falls
        // back to a deterministic pseudo-random (possibly non-transitive)
        // rule — a worst-case stand-in for stochastic bootstrap outcomes.
        let mut i = 0usize;
        let cmp = |a: usize, b: usize| {
            let out = if i < script.len() {
                outcome_from_u8(script[i])
            } else {
                outcome_from_u8(((a * 7 + b * 13) as u64 ^ seed) as u8)
            };
            i += 1;
            out
        };
        let state = sort(p, cmp);
        assert_rank_invariants(&state);
        // The sequence is still a permutation of 0..p.
        let mut seen = state.sequence.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..p).collect::<Vec<_>>());
    }

    #[test]
    fn consistent_comparator_sorts_correctly(
        levels in vec(0usize..6, 2..15),
        perm_seed in 0u64..1_000,
    ) {
        let p = levels.len();
        let cmp = |a: usize, b: usize| match levels[a].cmp(&levels[b]) {
            std::cmp::Ordering::Less => Outcome::Better,
            std::cmp::Ordering::Greater => Outcome::Worse,
            std::cmp::Ordering::Equal => Outcome::Equivalent,
        };
        let mut seq: Vec<usize> = (0..p).collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        use rand::seq::SliceRandom;
        seq.shuffle(&mut rng);
        let state = sort_from(SortState::from_sequence(seq), cmp);
        assert_rank_invariants(&state);
        // The sequence must respect the underlying total preorder.
        for w in state.sequence.windows(2) {
            prop_assert!(levels[w[0]] <= levels[w[1]],
                "sequence {:?} violates levels {:?}", state.sequence, levels);
        }
        // Equal ranks imply equal levels is NOT guaranteed (chain merges),
        // but strictly better levels can never rank WORSE.
        for i in 0..p {
            for j in 0..p {
                if levels[i] < levels[j] {
                    prop_assert!(
                        state.rank_of(i).unwrap() <= state.rank_of(j).unwrap(),
                        "faster algorithm ranked worse: {:?} vs {:?}", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn relative_scores_rows_are_distributions(
        levels in vec(0usize..4, 1..10),
        seed in 0u64..1_000,
    ) {
        let p = levels.len();
        let cmp = |a: usize, b: usize| match levels[a].cmp(&levels[b]) {
            std::cmp::Ordering::Less => Outcome::Better,
            std::cmp::Ordering::Greater => Outcome::Worse,
            std::cmp::Ordering::Equal => Outcome::Equivalent,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let table = relative_scores(p, ClusterConfig::with_repetitions(30), &mut rng, cmp);
        for alg in 0..p {
            let total: f64 = (1..=table.num_classes()).map(|r| table.score(alg, r)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "alg {alg} scores sum to {total}");
        }
        // Every class in 1..=k must be non-empty in the per-cluster view.
        for r in 1..=table.num_classes() {
            prop_assert!(!table.cluster(r).is_empty(), "class {r} empty");
        }
        // Final assignment classes are consecutive from 1.
        let clustering = table.final_assignment();
        let max_rank = clustering.assignments().iter().map(|a| a.rank).max().unwrap();
        prop_assert_eq!(max_rank, clustering.num_classes());
        for a in clustering.assignments() {
            prop_assert!(a.rank >= 1 && a.rank <= max_rank);
            prop_assert!(a.score > 0.0 && a.score <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn similarity_metrics_bounded_and_reflexive(
        levels in vec(0usize..4, 2..12),
        seed in 0u64..500,
    ) {
        let p = levels.len();
        let cmp = |a: usize, b: usize| match levels[a].cmp(&levels[b]) {
            std::cmp::Ordering::Less => Outcome::Better,
            std::cmp::Ordering::Greater => Outcome::Worse,
            std::cmp::Ordering::Equal => Outcome::Equivalent,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let c1 = relative_scores(p, ClusterConfig::with_repetitions(10), &mut rng, cmp).final_assignment();
        let c2 = relative_scores(p, ClusterConfig::with_repetitions(10), &mut rng, cmp).final_assignment();
        let ri = rand_index(&c1, &c2);
        prop_assert!((0.0..=1.0).contains(&ri));
        prop_assert_eq!(rand_index(&c1, &c1), 1.0);
        let ari = adjusted_rand_index(&c1, &c2);
        prop_assert!(ari <= 1.0 + 1e-12);
        prop_assert_eq!(adjusted_rand_index(&c1, &c1), 1.0);
    }

    #[test]
    fn triplets_always_well_formed(
        levels in vec(0usize..4, 2..10),
        seed in 0u64..500,
    ) {
        let p = levels.len();
        let cmp = |a: usize, b: usize| match levels[a].cmp(&levels[b]) {
            std::cmp::Ordering::Less => Outcome::Better,
            std::cmp::Ordering::Greater => Outcome::Worse,
            std::cmp::Ordering::Equal => Outcome::Equivalent,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let clustering = relative_scores(p, ClusterConfig::with_repetitions(10), &mut rng, cmp)
            .final_assignment();
        for t in enumerate_triplets(&clustering) {
            prop_assert_ne!(t.anchor, t.positive);
            prop_assert_eq!(clustering.assignment(t.anchor).rank, clustering.assignment(t.positive).rank);
            prop_assert!(clustering.assignment(t.negative).rank > clustering.assignment(t.anchor).rank);
            prop_assert!(t.margin_classes >= 1);
        }
    }
}
