//! E8 (extension) — execution-less relative-performance prediction, the
//! paper's stated future work: train a class predictor on the measured
//! clusters and grade it by leave-one-out validation.
//!
//! Training data: the Table I experiment plus a 5-stage digital-twin
//! hierarchy (32 placements) on the same platform; features are purely
//! static (FLOPs per device, bytes, crossings — no execution needed at
//! prediction time).

use rand::prelude::*;
use relperf_bench::{header, paper_comparator, SEED};
use relperf_core::cluster::ClusterConfig;
use relperf_core::predict::KnnClassModel;
use relperf_workloads::digital_twin::{self, MultiScaleConfig};
use relperf_workloads::experiment::{cluster_measurements, measure_all, Experiment};
use relperf_workloads::features::training_set;

fn evaluate(name: &str, exp: &Experiment, n: usize, k: usize) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let measured = measure_all(exp, n, &mut rng);
    let clustering = cluster_measurements(
        &measured,
        &paper_comparator(SEED),
        ClusterConfig::with_repetitions(50),
        &mut rng,
    )
    .final_assignment();

    let train = training_set(&exp.tasks, &measured, &clustering);
    let model = KnnClassModel::fit(train, k).unwrap();
    let (exact, within_one) = model.leave_one_out();
    println!(
        "{name:<28} algorithms={:<3} classes={:<2} kNN(k={k}): exact LOO = {:.2}, ±1 class = {:.2}",
        measured.len(),
        clustering.num_classes(),
        exact,
        within_one
    );
}

fn main() {
    header("Execution-less class prediction (paper future work, extension)");
    evaluate("table1 (8 placements)", &Experiment::table1(10), 30, 3);

    let config = MultiScaleConfig {
        stages: 5,
        base_size: 30,
        growth: 1.8,
        iters_per_stage: 3,
    };
    let twin = Experiment {
        platform: relperf_sim::presets::table1_platform(),
        tasks: digital_twin::tasks(&config),
        placements: digital_twin::placements(&config),
    };
    evaluate("digital-twin (32 placements)", &twin, 15, 3);

    let big = MultiScaleConfig {
        stages: 7,
        base_size: 25,
        growth: 1.6,
        iters_per_stage: 3,
    };
    let twin_big = Experiment {
        platform: relperf_sim::presets::table1_platform(),
        tasks: digital_twin::tasks(&big),
        placements: digital_twin::placements(&big),
    };
    evaluate("digital-twin (128 placements)", &twin_big, 15, 5);

    println!("\nbaseline: uniform guessing over k classes scores 1/k exact.");
    println!("the ±1-class criterion is the relevant one for algorithm selection");
    println!("(adjacent classes are near-equivalent performance).");
}
