//! The pipelined front half of the service: background scheduler threads
//! plus per-tenant response mailboxes.
//!
//! [`SessionService`] by itself is passive — someone must call
//! [`run_batch`](SessionService::run_batch), and with one synchronous
//! driver every tenant's latency is convoyed behind the slowest session
//! in the batch (the PR-5 bench shows p99 growing linearly with tenant
//! count for exactly this reason). [`ServiceRuntime`] fixes the shape of
//! the problem rather than the constant: it spawns `N` **scheduler
//! threads**, thread `t` owning the shards `s ≡ t (mod N)`, each draining
//! only its own shards via
//! [`run_shard_batch`](SessionService::run_shard_batch) on a bounded
//! cadence. A slow session now delays its own shard's batch — tenants
//! hashed to other shards keep their latency regardless.
//!
//! # Mailboxes
//!
//! Batch responses are routed into a per-tenant **mailbox** instead of
//! being returned to whoever happened to drain the batch. Callers collect
//! with [`collect_ready`](RuntimeHandle::collect_ready) (non-blocking) or
//! [`await_responses`](RuntimeHandle::await_responses) (blocking with a
//! deadline, satisfied by a condvar signal from the delivering worker).
//! Mailboxes are bounded ([`RuntimeConfig::mailbox_cap`]); a tenant that
//! never collects loses its **oldest** responses first — the runtime
//! never blocks a scheduler thread on a lazy client.
//!
//! # Determinism
//!
//! The runtime only moves *when* batches are cut, never *what* a session
//! computes: a session's ops still execute in `(tenant, seq)` order
//! inside whichever batch drains them, so served tables remain
//! bit-identical to direct [`ClusterSession`](relperf_core::session::ClusterSession)
//! drives for any thread count and cadence — property-tested in
//! `tests/pipeline.rs`.
//!
//! # Synchronous mode
//!
//! `scheduler_threads == 0` spawns nothing: batches run inline inside
//! `await_responses` / `collect_ready` ("drive-on-drain"). This mode is
//! fully deterministic end to end — no timing anywhere — and is what the
//! fuzz and overload tests pin their golden values against; it is also
//! the natural fallback when the `parallel` feature is compiled out.

use crate::error::{RecoveryError, ServiceError};
use crate::journal::{JournalConfig, JournalStore};
use crate::replication::{JournalShipper, SegmentTransport};
use crate::service::{
    OpResponse, RecoveryReport, SessionOp, SessionService, SessionSpec, SessionStatus,
    ServiceLimits,
};
use crate::stats::ServiceStats;
use relperf_core::cluster::Parallelism;
use relperf_measure::ScratchThreeWayComparator;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

/// How the background scheduler is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Scheduler threads. Thread `t` owns shards `s ≡ t (mod threads)`;
    /// `0` means synchronous drive-on-drain mode (no threads, batches run
    /// inline in `await_responses` / `collect_ready`).
    pub scheduler_threads: usize,
    /// How long an idle scheduler thread sleeps between queue polls.
    /// Submissions unpark the owning thread immediately, so the cadence
    /// bounds wake-up latency only when the unpark signal is missed.
    pub cadence: Duration,
    /// Responses kept per tenant mailbox; beyond this the oldest are
    /// dropped (the runtime never blocks a worker on a lazy client).
    pub mailbox_cap: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            scheduler_threads: 2,
            cadence: Duration::from_millis(1),
            mailbox_cap: 16384,
        }
    }
}

/// Why a blocking runtime call gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// The runtime was shut down while the caller waited.
    Stopped,
    /// The deadline passed with `missing` awaited responses still
    /// undelivered (or, in synchronous mode, the queues drained dry
    /// without producing them — e.g. they were delivered to a different
    /// collector or dropped by a full mailbox).
    Timeout {
        /// Awaited responses still missing when the caller gave up.
        missing: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Stopped => write!(f, "runtime stopped while waiting"),
            RuntimeError::Timeout { missing } => {
                write!(f, "gave up waiting with {missing} response(s) missing")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// State shared between the runtime owner, its scheduler threads, and any
/// number of [`RuntimeHandle`] clones.
struct Shared<C: ScratchThreeWayComparator + Send + Sync> {
    service: SessionService<C>,
    config: RuntimeConfig,
    /// Per-tenant delivered-response queues, with `delivered` signalled on
    /// every non-empty delivery.
    mailboxes: Mutex<HashMap<u64, VecDeque<OpResponse>>>,
    delivered: Condvar,
    stop: AtomicBool,
    /// Scheduler thread handles for submit-side unparking (empty in
    /// synchronous mode).
    workers: Mutex<Vec<Thread>>,
}

impl<C: ScratchThreeWayComparator + Send + Sync> Shared<C> {
    fn sync_mode(&self) -> bool {
        self.config.scheduler_threads == 0
    }

    /// Routes one batch's responses into the tenants' mailboxes.
    fn deliver(&self, responses: Vec<OpResponse>) {
        if responses.is_empty() {
            return;
        }
        let mut boxes = self.mailboxes.lock().expect("mailboxes poisoned");
        for r in responses {
            let mailbox = boxes.entry(r.key.tenant).or_default();
            mailbox.push_back(r);
            while mailbox.len() > self.config.mailbox_cap {
                mailbox.pop_front();
            }
        }
        drop(boxes);
        self.delivered.notify_all();
    }

    /// Wakes the scheduler thread owning `shard` (no-op in sync mode).
    fn kick(&self, shard: usize) {
        let workers = self.workers.lock().expect("workers poisoned");
        if !workers.is_empty() {
            workers[shard % workers.len()].unpark();
        }
    }

    /// Runs one inline batch over every shard and delivers it —
    /// synchronous mode's scheduling step. Returns how many responses
    /// the batch produced.
    fn drive_once(&self) -> usize {
        let responses = self.service.run_batch();
        let n = responses.len();
        self.deliver(responses);
        n
    }
}

/// Counts how many of `seqs` are not yet in the tenant's mailbox.
fn missing_count(
    boxes: &HashMap<u64, VecDeque<OpResponse>>,
    tenant: u64,
    seqs: &[u64],
) -> usize {
    match boxes.get(&tenant) {
        None => seqs.len(),
        Some(mailbox) => seqs
            .iter()
            .filter(|s| !mailbox.iter().any(|r| r.seq == **s))
            .count(),
    }
}

/// Removes exactly `seqs` from the tenant's mailbox (all known present),
/// returning them sorted by seq; unrelated responses stay queued.
fn extract(
    boxes: &mut HashMap<u64, VecDeque<OpResponse>>,
    tenant: u64,
    seqs: &[u64],
) -> Vec<OpResponse> {
    let mailbox = boxes.get_mut(&tenant).expect("caller verified presence");
    let mut out: Vec<OpResponse> = Vec::with_capacity(seqs.len());
    mailbox.retain(|r| {
        if seqs.contains(&r.seq) {
            out.push(r.clone());
            false
        } else {
            true
        }
    });
    if mailbox.is_empty() {
        boxes.remove(&tenant);
    }
    out.sort_by_key(|r| r.seq);
    out
}

/// The owning half of the pipelined runtime: holds the scheduler threads
/// and stops them on [`shutdown`](ServiceRuntime::shutdown) (or drop).
/// All request-side methods live on [`RuntimeHandle`], which this type
/// [`Deref`](std::ops::Deref)s to — wire servers clone handles freely.
pub struct ServiceRuntime<C: ScratchThreeWayComparator + Send + Sync + 'static> {
    handle: RuntimeHandle<C>,
    joins: Vec<JoinHandle<()>>,
}

/// A cheap cloneable reference to a running [`ServiceRuntime`] — the
/// submit/collect surface handed to wire connection handlers.
pub struct RuntimeHandle<C: ScratchThreeWayComparator + Send + Sync>(Arc<Shared<C>>);

impl<C: ScratchThreeWayComparator + Send + Sync> Clone for RuntimeHandle<C> {
    fn clone(&self) -> Self {
        RuntimeHandle(Arc::clone(&self.0))
    }
}

impl<C: ScratchThreeWayComparator + Send + Sync + 'static> ServiceRuntime<C> {
    /// Wraps `service` and starts the scheduler threads (none in
    /// synchronous mode — see the [module docs](self)).
    pub fn start(service: SessionService<C>, config: RuntimeConfig) -> Self {
        let shared = Arc::new(Shared {
            service,
            config,
            mailboxes: Mutex::new(HashMap::new()),
            delivered: Condvar::new(),
            stop: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        let mut joins = Vec::new();
        let n = config.scheduler_threads;
        for t in 0..n {
            let shard_count = shared.service.num_shards();
            let worker = Arc::clone(&shared);
            let join = thread::Builder::new()
                .name(format!("relperf-sched-{t}"))
                .spawn(move || {
                    // Thread t drains shards t, t+n, t+2n, … — a fixed
                    // partition, so no two threads ever race on a shard's
                    // queue and a slow shard only delays its own owner.
                    let owned: Vec<usize> = (t..shard_count).step_by(n).collect();
                    while !worker.stop.load(Ordering::Acquire) {
                        let responses = worker.service.run_shard_batch(owned.iter().copied());
                        if responses.is_empty() {
                            thread::park_timeout(worker.config.cadence);
                        } else {
                            worker.deliver(responses);
                        }
                    }
                })
                .expect("spawn scheduler thread");
            joins.push(join);
        }
        {
            let mut workers = shared.workers.lock().expect("workers poisoned");
            *workers = joins.iter().map(|j| j.thread().clone()).collect();
        }
        ServiceRuntime {
            handle: RuntimeHandle(shared),
            joins,
        }
    }

    /// Rebuilds a journaled service from its durable stores
    /// ([`SessionService::recover`]) and starts a runtime over it in one
    /// move — the restart path of a crashed pipelined deployment.
    pub fn recover(
        comparator: C,
        scheduler: Parallelism,
        limits: ServiceLimits,
        journal_config: JournalConfig,
        stores: Vec<Box<dyn JournalStore>>,
        runtime_config: RuntimeConfig,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        let (service, report) =
            SessionService::recover(comparator, scheduler, limits, journal_config, stores)?;
        Ok((Self::start(service, runtime_config), report))
    }

    /// A cloneable submit/collect handle (e.g. one per wire connection).
    pub fn handle(&self) -> RuntimeHandle<C> {
        self.handle.clone()
    }

    /// Starts a background **shipper thread** that pumps `shipper`
    /// through `transport` every `interval` until shutdown (with one
    /// final pump after stop, so a cleanly stopped leader leaves nothing
    /// durable unshipped). Build the pair with
    /// [`JournalShipper::wrap_stores`] and hand the wrapped stores to the
    /// service before starting the runtime. Ship/ack progress lands in
    /// [`ServiceStats::segments_shipped`] /
    /// [`segments_acked`](ServiceStats::segments_acked); per-lane
    /// delivery failures are retried on the next pump (see
    /// [`JournalShipper::pump`]).
    pub fn attach_shipper<T: SegmentTransport + Send + 'static>(
        &mut self,
        mut shipper: JournalShipper,
        mut transport: T,
        interval: Duration,
    ) {
        let shared = Arc::clone(&self.handle.0);
        let join = thread::Builder::new()
            .name("relperf-shipper".to_string())
            .spawn(move || {
                loop {
                    let stopping = shared.stop.load(Ordering::Acquire);
                    let report = shipper.pump(&mut transport);
                    let counters = shared.service.stat_counters();
                    counters
                        .segments_shipped
                        .fetch_add(report.cut as u64, Ordering::Relaxed);
                    counters
                        .segments_acked
                        .fetch_add(report.acked as u64, Ordering::Relaxed);
                    if stopping {
                        break;
                    }
                    thread::park_timeout(interval);
                }
            })
            .expect("spawn shipper thread");
        self.joins.push(join);
    }

    /// Stops the scheduler threads and joins them. Queued-but-undrained
    /// ops stay queued in the underlying service; undelivered mailbox
    /// contents are dropped with the runtime.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.handle.0.stop.store(true, Ordering::Release);
        {
            let workers = self.handle.0.workers.lock().expect("workers poisoned");
            for w in workers.iter() {
                w.unpark();
            }
        }
        self.handle.0.delivered.notify_all();
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

impl<C: ScratchThreeWayComparator + Send + Sync + 'static> Drop for ServiceRuntime<C> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl<C: ScratchThreeWayComparator + Send + Sync + 'static> std::ops::Deref for ServiceRuntime<C> {
    type Target = RuntimeHandle<C>;

    fn deref(&self) -> &RuntimeHandle<C> {
        &self.handle
    }
}

impl<C: ScratchThreeWayComparator + Send + Sync> RuntimeHandle<C> {
    /// The wrapped service, for admission calls the runtime does not
    /// intercept (status reads, stats, limits).
    pub fn service(&self) -> &SessionService<C> {
        &self.0.service
    }

    /// [`SessionService::create_session`] pass-through.
    pub fn create_session(
        &self,
        tenant: u64,
        session: u64,
        spec: SessionSpec,
    ) -> Result<(), ServiceError> {
        self.0.service.create_session(tenant, session, spec)
    }

    /// [`SessionService::restore_session`] pass-through.
    pub fn restore_session(
        &self,
        tenant: u64,
        session: u64,
        bytes: &[u8],
    ) -> Result<(), ServiceError> {
        self.0.service.restore_session(tenant, session, bytes)
    }

    /// Enqueues one op and wakes the owning scheduler thread. The
    /// response lands in the tenant's mailbox.
    pub fn submit(&self, tenant: u64, session: u64, op: SessionOp) -> Result<u64, ServiceError> {
        let seqs = self.submit_all(tenant, session, vec![op])?;
        Ok(seqs[0])
    }

    /// Atomic group enqueue ([`SessionService::submit_all`]) plus a wake
    /// of the owning scheduler thread.
    pub fn submit_all(
        &self,
        tenant: u64,
        session: u64,
        ops: Vec<SessionOp>,
    ) -> Result<Vec<u64>, ServiceError> {
        let seqs = self.0.service.submit_all(tenant, session, ops)?;
        if !seqs.is_empty() && !self.0.sync_mode() {
            self.0.kick(self.0.service.shard_index(tenant, session));
        }
        Ok(seqs)
    }

    /// Non-blocking drain of the tenant's whole mailbox (synchronous mode
    /// runs one inline batch first so there is something to drain).
    pub fn collect_ready(&self, tenant: u64) -> Vec<OpResponse> {
        if self.0.sync_mode() {
            self.0.drive_once();
        }
        let mut boxes = self.0.mailboxes.lock().expect("mailboxes poisoned");
        boxes
            .remove(&tenant)
            .map(|mailbox| mailbox.into())
            .unwrap_or_default()
    }

    /// Blocks until every ticket in `seqs` has a delivered response (then
    /// removes and returns exactly those, sorted by seq — unrelated
    /// responses stay queued), the runtime stops, or `timeout` passes.
    ///
    /// Synchronous mode ignores `timeout` and instead drives inline
    /// batches until the tickets resolve or the queues run dry.
    pub fn await_responses(
        &self,
        tenant: u64,
        seqs: &[u64],
        timeout: Duration,
    ) -> Result<Vec<OpResponse>, RuntimeError> {
        if seqs.is_empty() {
            return Ok(Vec::new());
        }
        if self.0.sync_mode() {
            return self.await_sync(tenant, seqs);
        }
        let deadline = Instant::now() + timeout;
        let mut boxes = self.0.mailboxes.lock().expect("mailboxes poisoned");
        loop {
            let missing = missing_count(&boxes, tenant, seqs);
            if missing == 0 {
                return Ok(extract(&mut boxes, tenant, seqs));
            }
            if self.0.stop.load(Ordering::Acquire) {
                return Err(RuntimeError::Stopped);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout { missing });
            }
            let (guard, _) = self
                .0
                .delivered
                .wait_timeout(boxes, deadline - now)
                .expect("mailboxes poisoned");
            boxes = guard;
        }
    }

    /// Synchronous-mode wait: drive inline batches until the tickets
    /// resolve; dry queues with tickets still missing is a typed timeout.
    fn await_sync(&self, tenant: u64, seqs: &[u64]) -> Result<Vec<OpResponse>, RuntimeError> {
        loop {
            {
                let mut boxes = self.0.mailboxes.lock().expect("mailboxes poisoned");
                let missing = missing_count(&boxes, tenant, seqs);
                if missing == 0 {
                    return Ok(extract(&mut boxes, tenant, seqs));
                }
                if self.0.stop.load(Ordering::Acquire) {
                    return Err(RuntimeError::Stopped);
                }
            }
            if self.0.drive_once() == 0 {
                let boxes = self.0.mailboxes.lock().expect("mailboxes poisoned");
                let missing = missing_count(&boxes, tenant, seqs);
                if missing == 0 {
                    drop(boxes);
                    continue;
                }
                return Err(RuntimeError::Timeout { missing });
            }
        }
    }

    /// [`SessionService::session_status`] pass-through.
    pub fn session_status(&self, tenant: u64, session: u64) -> Option<SessionStatus> {
        self.0.service.session_status(tenant, session)
    }

    /// [`SessionService::stats`] pass-through.
    pub fn stats(&self) -> ServiceStats {
        self.0.service.stats()
    }

    /// [`SessionService::flush_journals`] pass-through — force the group
    /// commit boundary before a planned shutdown.
    pub fn flush_journals(&self) -> Result<(), ServiceError> {
        self.0.service.flush_journals()
    }

    /// [`SessionService::compact_all`] pass-through.
    pub fn compact_all(&self) -> Result<usize, ServiceError> {
        self.0.service.compact_all()
    }

    /// [`SessionService::emit_digests`] pass-through — append divergence
    /// digests to every quiesced shard so downstream followers can audit
    /// their replayed state.
    pub fn emit_digests(&self) -> Result<usize, ServiceError> {
        self.0.service.emit_digests()
    }

    /// Whether this runtime runs batches inline (no scheduler threads).
    pub fn is_sync(&self) -> bool {
        self.0.sync_mode()
    }
}

impl<C: ScratchThreeWayComparator + Send + Sync> fmt::Debug for RuntimeHandle<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeHandle")
            .field("sync", &self.0.sync_mode())
            .field("config", &self.0.config)
            .finish_non_exhaustive()
    }
}

impl<C: ScratchThreeWayComparator + Send + Sync + 'static> fmt::Debug for ServiceRuntime<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceRuntime")
            .field("scheduler_threads", &self.joins.len())
            .field("config", &self.handle.0.config)
            .finish_non_exhaustive()
    }
}
