//! E9 (extension) — the paper's "Device-Accelerator(s)" plural: the
//! three-task scientific code on a platform with TWO accelerators (a fast
//! expensive GPU `A` and a slow cheap Raspberry-Pi-class board `B`),
//! clustering all 3^3 = 27 placements.
//!
//! The interesting structure: compute-heavy tasks want `A`, nothing wants
//! `B` for speed — but `B` placements dominate the *cheap* end of each
//! class, which is exactly the multi-criteria selection the clusters
//! enable.

use rand::prelude::*;
use relperf_bench::{header, paper_comparator, SEED};
use relperf_core::cluster::ClusterConfig;
use relperf_core::relative_scores;
use relperf_measure::Sample;
use relperf_sim::device::{DeviceKind, DeviceSpec};
use relperf_sim::link::LinkSpec;
use relperf_sim::multi::{enumerate_multi_placements, multi_label, AcceleratorSlot, MultiPlatform};
use relperf_sim::noise::NoiseModel;
use relperf_workloads::scientific_code;

fn platform() -> MultiPlatform {
    let table1 = relperf_sim::presets::table1_platform();
    let p = MultiPlatform {
        device: table1.device.clone(),
        device_noise: table1.device_noise.clone(),
        accelerators: vec![
            AcceleratorSlot {
                spec: table1.accelerator.clone(),
                link: table1.link.clone(),
                noise: table1.accel_noise.clone(),
                transfer_noise: table1.transfer_noise.clone(),
            },
            AcceleratorSlot {
                spec: DeviceSpec {
                    name: "raspberry-pi-4".into(),
                    kind: DeviceKind::RaspberryPi,
                    peak_flops: 5.0e9,
                    mem_capacity_bytes: 512 << 20,
                    mem_pressure_penalty: 1.0,
                    energy_per_flop: 0.15e-9,
                    idle_power_watts: 2.5,
                    cost_per_second: 1.0e-3,
                    launch_overhead_s: 5.0e-5,
                },
                link: LinkSpec {
                    name: "gigabit-ethernet".into(),
                    latency_s: 2.0e-4,
                    bandwidth_bytes_per_s: 1.2e8,
                    energy_per_byte: 6.0e-9,
                },
                noise: NoiseModel::Gaussian { std_frac: 0.03 },
                transfer_noise: NoiseModel::LogNormal { sigma: 0.1 },
            },
        ],
        context_switch_s: table1.context_switch_s,
    };
    p.validate();
    p
}

fn main() {
    header("Two accelerators (A = GPU, B = Raspberry Pi): 27 placements of the RLS code");
    let platform = platform();
    let tasks = scientific_code::tasks(10);
    let placements = enumerate_multi_placements(3, 2);
    let mut rng = StdRng::seed_from_u64(SEED);

    let samples: Vec<(String, Sample)> = placements
        .iter()
        .map(|p| {
            let label = multi_label(p);
            let sample = platform
                .measure(&tasks, p, 30, &mut rng)
                .expect("finite simulated times");
            (label, sample)
        })
        .collect();

    println!("{:<6} {:>12} {:>12}", "alg", "mean [s]", "cost");
    let mut costs = Vec::new();
    for (p, (label, sample)) in placements.iter().zip(&samples) {
        let rec = platform.execute(&tasks, p, &mut StdRng::seed_from_u64(1));
        costs.push(rec.operating_cost);
        println!("{:<6} {:>12.5} {:>12.6}", label, sample.mean(), rec.operating_cost);
    }

    let comparator = paper_comparator(SEED ^ 0x51);
    let table = relative_scores(
        samples.len(),
        ClusterConfig::with_repetitions(40),
        &mut rng,
        |a, b| {
            use relperf_measure::ThreeWayComparator;
            comparator.compare(&samples[a].1, &samples[b].1)
        },
    );
    let clustering = table.final_assignment();
    println!("\nperformance classes ({} total):", clustering.num_classes());
    for rank in 1..=clustering.num_classes() {
        let members: Vec<String> = clustering
            .class(rank)
            .iter()
            .map(|a| samples[a.algorithm].0.clone())
            .collect();
        println!("  C{rank}: {}", members.join(" "));
    }

    // Cheapest algorithm inside the best two classes — the multi-criteria
    // selection the clusters exist for.
    let mut best_cheap: Option<(usize, f64)> = None;
    for (i, a) in clustering.assignments().iter().enumerate() {
        if a.rank <= 2 {
            let c = costs[i];
            if best_cheap.is_none() || c < best_cheap.unwrap().1 {
                best_cheap = Some((i, c));
            }
        }
    }
    if let Some((i, c)) = best_cheap {
        println!(
            "\ncheapest placement within the two best classes: {} (cost {:.6})",
            samples[i].0, c
        );
    }
}
