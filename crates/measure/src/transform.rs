//! Sample transforms: trimming, winsorizing, warmup removal.
//!
//! Companions to the measurement collection of the paper's Sec. III.
//! Timing data is contaminated in predictable ways — cold-cache warmup at
//! the head (the caching influence of the paper's ref. \[2\]) and
//! interference spikes in the tail. These transforms produce cleaned
//! [`Sample`]s while keeping the raw data untouched (the comparison
//! methodology itself never requires cleaning, but the ablation harness
//! uses these to test sensitivity to it).

use crate::sample::{Sample, SampleError};

/// Drops the `frac` smallest and `frac` largest measurements (symmetric
/// trimming). `frac` must be in `[0, 0.5)`; at least one measurement
/// always survives.
pub fn trimmed(sample: &Sample, frac: f64) -> Result<Sample, SampleError> {
    assert!((0.0..0.5).contains(&frac), "trim fraction must be in [0, 0.5)");
    let n = sample.len();
    let k = (n as f64 * frac).floor() as usize;
    let sorted = sample.sorted();
    let kept = &sorted[k..n - k];
    if kept.is_empty() {
        // Only possible when n is tiny and frac large; keep the median.
        return Sample::new(vec![sample.median()]);
    }
    Sample::new(kept.to_vec())
}

/// Clamps the `frac` smallest and largest measurements to the trim
/// boundaries instead of dropping them (winsorizing preserves `N`).
pub fn winsorized(sample: &Sample, frac: f64) -> Result<Sample, SampleError> {
    assert!((0.0..0.5).contains(&frac), "winsor fraction must be in [0, 0.5)");
    let n = sample.len();
    let k = (n as f64 * frac).floor() as usize;
    let sorted = sample.sorted();
    let lo = sorted[k];
    let hi = sorted[n - 1 - k];
    Sample::new(sample.values().iter().map(|&v| v.clamp(lo, hi)).collect())
}

/// Drops the first `count` measurements (explicit warmup removal, in
/// insertion order). Keeps at least one measurement.
pub fn drop_warmup(sample: &Sample, count: usize) -> Result<Sample, SampleError> {
    let n = sample.len();
    let k = count.min(n - 1);
    Sample::new(sample.values()[k..].to_vec())
}

/// Heuristic warmup detection: the longest prefix (up to `n/4`) whose
/// every element exceeds the overall median by more than `threshold`
/// relative. Returns the number of leading measurements to drop.
pub fn detect_warmup(sample: &Sample, threshold: f64) -> usize {
    assert!(threshold >= 0.0, "threshold must be non-negative");
    let median = sample.median();
    let cutoff = median * (1.0 + threshold);
    let max_prefix = sample.len() / 4;
    sample
        .values()
        .iter()
        .take(max_prefix)
        .take_while(|&&v| v > cutoff)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[f64]) -> Sample {
        Sample::new(v.to_vec()).unwrap()
    }

    #[test]
    fn trimming_removes_extremes() {
        let x = s(&[100.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 0.0]);
        let t = trimmed(&x, 0.1).unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.max(), 8.0);
    }

    #[test]
    fn trimming_zero_frac_is_identity_on_sorted_values() {
        let x = s(&[3.0, 1.0, 2.0]);
        let t = trimmed(&x, 0.0).unwrap();
        assert_eq!(t.sorted(), x.sorted());
    }

    #[test]
    fn trimming_reduces_variance_with_outliers() {
        let x = s(&[1.0, 1.1, 0.9, 1.0, 50.0]);
        let t = trimmed(&x, 0.2).unwrap();
        assert!(t.variance() < x.variance());
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trim_frac_bounds_checked() {
        trimmed(&s(&[1.0]), 0.5).unwrap();
    }

    #[test]
    fn winsorizing_preserves_count_and_clamps() {
        let x = s(&[0.0, 1.0, 2.0, 3.0, 100.0]);
        let w = winsorized(&x, 0.2).unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(w.max(), 3.0); // 100 clamped to the 80th-percentile value
        assert_eq!(w.min(), 1.0); // 0 clamped up
        assert!(w.mean() < x.mean());
    }

    #[test]
    fn drop_warmup_keeps_order_and_floor() {
        let x = s(&[9.0, 8.0, 1.0, 1.1, 0.9]);
        let d = drop_warmup(&x, 2).unwrap();
        assert_eq!(d.values(), &[1.0, 1.1, 0.9]);
        // Never drops everything.
        let d_all = drop_warmup(&x, 99).unwrap();
        assert_eq!(d_all.len(), 1);
        assert_eq!(d_all.values(), &[0.9]);
    }

    #[test]
    fn warmup_detection_finds_hot_prefix() {
        // Two slow cold-start runs, then steady state.
        let vals: Vec<f64> = [2.0, 1.8]
            .iter()
            .chain([1.0; 18].iter())
            .copied()
            .collect();
        let x = s(&vals);
        assert_eq!(detect_warmup(&x, 0.3), 2);
        // No warmup in a flat sample.
        assert_eq!(detect_warmup(&s(&[1.0; 10]), 0.1), 0);
    }

    #[test]
    fn warmup_detection_capped_at_quarter() {
        // Every value above the cutoff? The prefix is capped at n/4, so at
        // most 2 of 8 even in a pathological sample.
        let x = s(&[5.0, 5.0, 5.0, 5.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(detect_warmup(&x, 0.1) <= 2);
    }

    #[test]
    fn transforms_compose() {
        let raw = s(&[10.0, 9.0, 1.0, 1.1, 0.9, 1.05, 30.0, 0.95]);
        let k = detect_warmup(&raw, 0.5);
        let cleaned = drop_warmup(&raw, k).unwrap();
        let robust = trimmed(&cleaned, 0.2).unwrap();
        assert!(robust.max() < 30.0);
        assert!(robust.coeff_of_variation() < raw.coeff_of_variation());
    }
}
