//! The `MathTask` of the paper's Procedure 6, in two forms:
//!
//! * [`simulated_task`] — a `relperf-sim` [`Task`] description whose FLOP
//!   and byte counts come from the exact kernel accounting in
//!   `relperf-linalg::flops`; this is what the Table I and Fig. 1b
//!   experiments execute on the simulated platform.
//! * [`run_real`] — the actual computation (random `A`, `B`; solve
//!   `Z = (AᵀA + λI)⁻¹AᵀB`; penalty `‖AZ − B‖²`) on this machine, used by
//!   the quickstart example and the real-measurement path.

use rand::Rng;
use relperf_linalg::flops;
use relperf_linalg::rls::{math_task_with, RlsMethod};
use relperf_linalg::KernelEngine;
use relperf_sim::Task;

/// Bytes a framework keeps live per `MathTask` iteration: the three
/// size²-matrices that dominate the footprint (`A`, `B`, and the factor /
/// result storage reuse one buffer each in a tight implementation).
pub fn working_set_bytes(size: usize) -> u64 {
    3 * flops::matrix_bytes(size, size)
}

/// Builds the simulated task description for a `MathTask(size)` loop of
/// `iters` iterations.
///
/// Byte counts model the TensorFlow placement behaviour the paper
/// describes: inputs `A`, `B` are generated host-side each iteration and
/// must cross the link when the task is offloaded; only the scalar penalty
/// returns.
pub fn simulated_task(name: &str, size: usize, iters: usize) -> Task {
    Task {
        name: name.to_string(),
        iterations: iters as u64,
        flops_per_iter: flops::rls_iteration(size),
        offload_bytes_per_iter: 2 * flops::matrix_bytes(size, size),
        return_bytes_per_iter: 8,
        working_set_bytes: working_set_bytes(size),
        handoff_bytes: 8, // the penalty scalar feeds the next task
    }
}

/// Runs the real `MathTask` on this machine (Procedure 6 verbatim) on the
/// default blocked kernel engine and returns the final penalty.
pub fn run_real<R: Rng + ?Sized>(
    rng: &mut R,
    size: usize,
    iters: usize,
    penalty: f64,
) -> Result<f64, relperf_linalg::LinalgError> {
    run_real_with(rng, size, iters, penalty, KernelEngine::default())
}

/// [`run_real`] on an explicit [`KernelEngine`]. Every engine draws the
/// same RNG stream and computes bit-identical kernels, so the returned
/// penalty is **the same, bit for bit**, whichever engine runs — only the
/// wall-clock (the thing the paper measures) changes. Golden-tested in
/// `tests/kernel_golden.rs`.
pub fn run_real_with<R: Rng + ?Sized>(
    rng: &mut R,
    size: usize,
    iters: usize,
    penalty: f64,
    engine: KernelEngine,
) -> Result<f64, relperf_linalg::LinalgError> {
    math_task_with(rng, size, iters, penalty, RlsMethod::NormalCholesky, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn simulated_task_counts_match_flops_module() {
        let t = simulated_task("L3", 300, 10);
        assert_eq!(t.iterations, 10);
        assert_eq!(t.flops_per_iter, flops::rls_iteration(300));
        assert_eq!(t.offload_bytes_per_iter, 2 * 8 * 300 * 300);
        assert_eq!(t.working_set_bytes, 3 * 8 * 300 * 300);
        assert_eq!(t.return_bytes_per_iter, 8);
        assert_eq!(t.name, "L3");
    }

    #[test]
    fn working_set_grows_quadratically() {
        assert_eq!(working_set_bytes(100), 4 * working_set_bytes(50));
    }

    #[test]
    fn run_real_produces_finite_penalty() {
        let mut rng = StdRng::seed_from_u64(101);
        let p = run_real(&mut rng, 12, 2, 0.0).unwrap();
        assert!(p.is_finite() && p >= 0.0);
    }

    #[test]
    fn run_real_threads_penalty() {
        let a = run_real(&mut StdRng::seed_from_u64(102), 10, 1, 0.0).unwrap();
        let b = run_real(&mut StdRng::seed_from_u64(102), 10, 1, 50.0).unwrap();
        assert_ne!(a, b, "initial penalty must influence the result");
    }
}
