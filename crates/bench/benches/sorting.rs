//! B3 — Criterion benchmarks of the clustering core: the three-way bubble
//! sort and Procedure 4 (relative scores) as the algorithm count grows.
//! The paper notes the sort "is not optimized for performance"; these
//! benches quantify its quadratic comparison count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use relperf_core::cluster::{relative_scores, ClusterConfig};
use relperf_core::sort::sort;
use relperf_measure::Outcome;
use std::hint::black_box;

fn synthetic_cmp(levels: &[usize]) -> impl FnMut(usize, usize) -> Outcome + '_ {
    move |a, b| match levels[a].cmp(&levels[b]) {
        std::cmp::Ordering::Less => Outcome::Better,
        std::cmp::Ordering::Greater => Outcome::Worse,
        std::cmp::Ordering::Equal => Outcome::Equivalent,
    }
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("three-way-sort");
    for &p in &[8usize, 32, 128] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let levels: Vec<usize> = (0..p).map(|_| rng.random_range(0..p / 2)).collect();
        group.bench_with_input(BenchmarkId::new("sort", p), &p, |bench, _| {
            bench.iter(|| sort(black_box(p), synthetic_cmp(&levels)))
        });
    }
    group.finish();
}

fn bench_relative_scores(c: &mut Criterion) {
    let mut group = c.benchmark_group("procedure4");
    for &p in &[8usize, 16] {
        let mut rng = StdRng::seed_from_u64(p as u64);
        let levels: Vec<usize> = (0..p).map(|_| rng.random_range(0..4)).collect();
        group.bench_with_input(BenchmarkId::new("rep100", p), &p, |bench, _| {
            bench.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                relative_scores(
                    black_box(p),
                    ClusterConfig::with_repetitions(100),
                    &mut rng,
                    synthetic_cmp(&levels),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort, bench_relative_scores);
criterion_main!(benches);
