//! Guided search over large algorithm spaces.
//!
//! From the paper's conclusions (following the Sec. IV decision models): "in case of exponential explosion of the search
//! space, our methodology can still be applied on a subset of possible
//! solutions and the resulting clusters with relative scores can be used
//! as a ground truth to guide the search of algorithm". This module
//! implements that workflow with a measurement-budgeted tournament:
//!
//! 1. sample a subset of candidates,
//! 2. cluster the subset with the three-way methodology,
//! 3. keep the top class, refill the pool with unseen candidates,
//! 4. repeat until the measurement budget is exhausted.
//!
//! The search never needs the full `2^n` enumeration — it touches only the
//! candidates it measures, and every comparison goes through the same
//! [`relperf_measure::ThreeWayComparator`] machinery as the exhaustive
//! pipeline.

use crate::cluster::{relative_scores, ClusterConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use relperf_measure::Outcome;

/// Configuration of the tournament search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Candidates per tournament round (the clustered subset size).
    pub round_size: usize,
    /// Shuffled clustering repetitions per round.
    pub repetitions: usize,
    /// Total comparison budget; the search stops when predicted
    /// comparisons for the next round would exceed it.
    pub comparison_budget: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            round_size: 6,
            repetitions: 10,
            comparison_budget: 5_000,
        }
    }
}

/// Result of a tournament search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Indices of the surviving top-class candidates, best scores first.
    pub champions: Vec<usize>,
    /// Every candidate that was ever measured/compared.
    pub explored: Vec<usize>,
    /// Comparisons actually spent.
    pub comparisons_used: usize,
    /// Tournament rounds run.
    pub rounds: usize,
}

/// Runs the tournament over `num_candidates` algorithms using `cmp` for
/// three-way comparisons (typically backed by lazy measurement — measure a
/// candidate the first time it is compared).
///
/// # Panics
/// Panics when `round_size < 2` or there are no candidates.
pub fn tournament_search<R: Rng + ?Sized>(
    num_candidates: usize,
    config: SearchConfig,
    rng: &mut R,
    mut cmp: impl FnMut(usize, usize) -> Outcome,
) -> SearchResult {
    assert!(num_candidates > 0, "need at least one candidate");
    assert!(config.round_size >= 2, "round size must be at least 2");

    let mut unseen: Vec<usize> = (0..num_candidates).collect();
    unseen.shuffle(rng);
    let mut champions: Vec<usize> = Vec::new();
    let mut explored: Vec<usize> = Vec::new();
    let mut comparisons_used = 0usize;
    let mut rounds = 0usize;

    // Comparisons per round: bubble sort is p(p-1)/2 per repetition.
    let p = config.round_size;
    let per_round = config.repetitions * p * (p - 1) / 2;

    while !unseen.is_empty() && comparisons_used + per_round <= config.comparison_budget {
        // Pool: current champions + fresh candidates up to round_size.
        let mut pool: Vec<usize> = champions.clone();
        while pool.len() < config.round_size {
            match unseen.pop() {
                Some(c) => {
                    explored.push(c);
                    pool.push(c);
                }
                None => break,
            }
        }
        if pool.len() < 2 {
            break;
        }

        let table = relative_scores(
            pool.len(),
            ClusterConfig::with_repetitions(config.repetitions),
            rng,
            |a, b| {
                comparisons_used += 1;
                cmp(pool[a], pool[b])
            },
        );
        let clustering = table.final_assignment();
        champions = clustering
            .class(1)
            .into_iter()
            .map(|a| pool[a.algorithm])
            .collect();
        // Keep at least one slot free for a fresh candidate so the search
        // always advances even when a whole round ties (class(1) is sorted
        // best-score first, so truncation drops the least confident).
        champions.truncate(config.round_size - 1);
        rounds += 1;
    }

    SearchResult {
        champions,
        explored,
        comparisons_used,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn level_cmp(levels: &[usize]) -> impl FnMut(usize, usize) -> Outcome + '_ {
        move |a, b| match levels[a].cmp(&levels[b]) {
            std::cmp::Ordering::Less => Outcome::Better,
            std::cmp::Ordering::Greater => Outcome::Worse,
            std::cmp::Ordering::Equal => Outcome::Equivalent,
        }
    }

    #[test]
    fn finds_the_unique_best_in_a_large_space() {
        // 64 candidates, one global optimum at index 17.
        let mut levels = vec![5usize; 64];
        levels[17] = 0;
        for (i, l) in levels.iter_mut().enumerate() {
            if i % 7 == 0 && i != 17 {
                *l = 2;
            }
        }
        let mut rng = StdRng::seed_from_u64(211);
        let result = tournament_search(64, SearchConfig::default(), &mut rng, level_cmp(&levels));
        assert!(
            result.champions.contains(&17),
            "champion set {:?} must contain the optimum",
            result.champions
        );
        // All champions share the optimum's level.
        for &c in &result.champions {
            assert_eq!(levels[c], 0, "non-optimal champion {c}");
        }
        assert!(result.rounds > 1);
    }

    #[test]
    fn explores_far_fewer_than_exhaustive_comparisons() {
        let levels: Vec<usize> = (0..200).map(|i| (i * 31) % 17).collect();
        let mut rng = StdRng::seed_from_u64(212);
        let config = SearchConfig {
            round_size: 6,
            repetitions: 5,
            comparison_budget: 4_000,
        };
        let result = tournament_search(200, config, &mut rng, level_cmp(&levels));
        assert!(result.comparisons_used <= 4_000);
        // Exhaustive Procedure 4 at Rep=5 would cost 5·200·199/2 = 99 500.
        assert!(result.comparisons_used < 10_000);
        // It must still find a level-0 candidate.
        let best_found = result.champions.iter().map(|&c| levels[c]).min().unwrap();
        assert_eq!(best_found, 0, "champions: {:?}", result.champions);
    }

    #[test]
    fn respects_budget() {
        let levels = vec![1usize; 50];
        let mut rng = StdRng::seed_from_u64(213);
        let config = SearchConfig {
            round_size: 5,
            repetitions: 10,
            comparison_budget: 250, // only enough for ~2 rounds
        };
        let result = tournament_search(50, config, &mut rng, level_cmp(&levels));
        assert!(result.comparisons_used <= 250);
        assert!(result.explored.len() < 50);
    }

    #[test]
    fn single_candidate_trivial() {
        let mut rng = StdRng::seed_from_u64(214);
        let result = tournament_search(1, SearchConfig::default(), &mut rng, |_, _| {
            unreachable!("no comparisons possible")
        });
        // One candidate, pool never reaches 2 — no rounds, no champions
        // claimed beyond exploration.
        assert_eq!(result.rounds, 0);
        assert!(result.comparisons_used == 0);
    }

    #[test]
    fn all_equivalent_candidates_all_champions_of_final_round() {
        let levels = vec![3usize; 12];
        let mut rng = StdRng::seed_from_u64(215);
        let config = SearchConfig {
            round_size: 4,
            repetitions: 5,
            comparison_budget: 10_000,
        };
        let result = tournament_search(12, config, &mut rng, level_cmp(&levels));
        // Everything is equivalent: the champion set is the whole final
        // pool and the search must have explored every candidate.
        assert_eq!(result.explored.len(), 12);
        assert!(!result.champions.is_empty());
    }

    #[test]
    #[should_panic(expected = "round size")]
    fn tiny_round_size_rejected() {
        let mut rng = StdRng::seed_from_u64(216);
        tournament_search(
            10,
            SearchConfig {
                round_size: 1,
                ..Default::default()
            },
            &mut rng,
            |_, _| Outcome::Equivalent,
        );
    }
}
