//! Three-way comparison of measurement distributions.
//!
//! Comparing two algorithms means comparing two *sets* of measurements, and
//! the result is one of three outcomes: [`Outcome::Better`],
//! [`Outcome::Worse`], or [`Outcome::Equivalent`] (paper, Sec. I). The
//! default implementation, [`BootstrapComparator`], follows the bootstrap
//! strategy of the companion method paper (ref. \[15\], arXiv:2010.07226) as
//! summarized in Sec. III: repeatedly resample both distributions, compare a
//! set of quantile statistics per draw, and declare a significant difference
//! only when one side dominates a large fraction of the draws.

use crate::bootstrap::{quantile_sorted, resample_id_counts_into, QuantilePlan};
use crate::sample::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
pub use relperf_parallel::Parallelism;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Derives the decorrelated RNG seed of stream `index` under `base_seed`
/// (one SplitMix64 finalizer step).
///
/// This is the workspace's canonical seed-derivation function: the batched
/// comparator ([`BootstrapComparator::compare_batch`]), the parallel
/// clustering (`relperf_core::cluster::relative_scores_seeded`), and the
/// parallel measurement (`relperf_workloads::experiment::measure_all_seeded`)
/// all split one master seed into per-index streams with it, which is what
/// makes their parallel and serial paths bit-identical.
pub fn stream_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Result of comparing algorithm `a` against algorithm `b`.
///
/// Measurements are costs (execution time, energy, …): *lower is better*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// `a` performs significantly better (lower metric) than `b`.
    Better,
    /// `a` performs significantly worse (higher metric) than `b`.
    Worse,
    /// The distributions overlap too much to separate — the algorithms
    /// belong to the same performance class.
    Equivalent,
}

impl Outcome {
    /// The outcome of the flipped comparison (`b` vs `a`).
    #[must_use]
    pub fn invert(self) -> Outcome {
        match self {
            Outcome::Better => Outcome::Worse,
            Outcome::Worse => Outcome::Better,
            Outcome::Equivalent => Outcome::Equivalent,
        }
    }

    /// The paper's notation: `>` for better, `<` for worse, `~` for
    /// equivalent.
    pub fn symbol(self) -> &'static str {
        match self {
            Outcome::Better => ">",
            Outcome::Worse => "<",
            Outcome::Equivalent => "~",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A three-way comparison strategy over measurement samples.
///
/// Implementations may be stochastic — the paper's relative scores exist
/// precisely because repeated comparisons of overlapping distributions can
/// flip between `Equivalent` and a strict outcome.
pub trait ThreeWayComparator {
    /// Compares `a` against `b`; lower measurements are better.
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome;
}

/// A comparator whose stochastic outcome can be addressed by an explicit
/// stream id instead of internal call order.
///
/// `compare_seeded(a, b, stream)` must be a *pure function* of the sample
/// pair, the stream id, and the comparator's own configuration — never of
/// how many comparisons ran before. This is the contract that lets the
/// clustering engine evaluate comparisons concurrently (in any order, on
/// any number of threads) and still produce bit-identical score tables.
///
/// Deterministic comparators (e.g. [`MedianComparator`]) satisfy the
/// contract trivially by ignoring `stream`.
pub trait SeededThreeWayComparator: ThreeWayComparator {
    /// Compares `a` against `b` using the stochastic stream `stream`.
    fn compare_seeded(&self, a: &Sample, b: &Sample, stream: u64) -> Outcome;
}

/// A seeded comparator that can run against caller-provided scratch
/// memory, so a worker thread evaluating many comparisons reuses one
/// arena instead of allocating per call.
///
/// `compare_seeded_scratch(&mut scratch, a, b, stream)` must return
/// exactly what [`compare_seeded`](SeededThreeWayComparator::compare_seeded)
/// returns — scratch is working memory, never carried state. The parallel
/// clustering engine creates one scratch per worker
/// (`relperf_parallel::parallel_map_indexed_with`) and threads it through
/// every repetition that worker runs.
///
/// Comparators without working memory (e.g. [`MedianComparator`]) use
/// `Scratch = ()` and delegate.
pub trait ScratchThreeWayComparator: SeededThreeWayComparator {
    /// The reusable per-worker working memory.
    type Scratch: Send;

    /// Creates a scratch arena sized for this comparator.
    fn new_scratch(&self) -> Self::Scratch;

    /// Like [`compare_seeded`](SeededThreeWayComparator::compare_seeded),
    /// reusing `scratch` instead of allocating.
    fn compare_seeded_scratch(
        &self,
        scratch: &mut Self::Scratch,
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome;
}

// A comparator reference is a comparator: all three traits take `&self`,
// so `&C` delegates transparently. This is what lets owning contexts
// (e.g. `relperf_core`'s `ClusterSession`) be generic over "owned or
// borrowed" without a separate lifetime-infected API.
impl<T: ThreeWayComparator + ?Sized> ThreeWayComparator for &T {
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome {
        (**self).compare(a, b)
    }
}

impl<T: SeededThreeWayComparator + ?Sized> SeededThreeWayComparator for &T {
    fn compare_seeded(&self, a: &Sample, b: &Sample, stream: u64) -> Outcome {
        (**self).compare_seeded(a, b, stream)
    }
}

impl<T: ScratchThreeWayComparator> ScratchThreeWayComparator for &T {
    type Scratch = T::Scratch;

    fn new_scratch(&self) -> T::Scratch {
        (**self).new_scratch()
    }

    fn compare_seeded_scratch(
        &self,
        scratch: &mut T::Scratch,
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome {
        (**self).compare_seeded_scratch(scratch, a, b, stream)
    }
}

/// Reusable working memory for the [`BootstrapComparator`] fast path: the
/// count-vector buffer, the order-statistic scratch, the per-side quantile
/// values, and the cached [`QuantilePlan`]s.
///
/// One `Scratch` serves any number of comparisons sequentially — buffers
/// are cleared and refilled, and the plans only recompute when the sample
/// size or quantile list changes. At steady state (equal-sized samples, a
/// fixed comparator config — the common case of a clustering run) a
/// bootstrap round performs **zero** heap allocations.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Resample tallies over insertion order (shared by both sides —
    /// side A is fully drawn and read before side B is drawn). Indexed by
    /// insertion id so the cumulative walk can ride the sample's sorted
    /// runs and never needs a flat view or position map.
    counts: Vec<u32>,
    /// Order statistics picked by the cumulative walk (2 per quantile).
    stats: Vec<f64>,
    /// Side A's quantile values for the current round.
    q_a: Vec<f64>,
    /// Side B's quantile values for the current round.
    q_b: Vec<f64>,
    plan_a: QuantilePlan,
    plan_b: QuantilePlan,
}

impl Scratch {
    /// An empty scratch arena; buffers grow on first use.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// Configuration of the [`BootstrapComparator`].
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapConfig {
    /// Number of bootstrap rounds `B`.
    pub reps: usize,
    /// Quantiles compared in each round.
    pub quantiles: Vec<f64>,
    /// Relative margin `δ`: a quantile only counts as a win when it beats
    /// the opponent by more than this fraction.
    pub margin: f64,
    /// Fraction `γ` of quantiles that must win for a round win.
    pub dominance: f64,
    /// Decision threshold `τ` on the round-win frequency difference.
    pub threshold: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            reps: 100,
            quantiles: vec![0.05, 0.25, 0.5, 0.75, 0.95],
            margin: 0.02,
            dominance: 0.8,
            threshold: 0.5,
        }
    }
}

impl BootstrapConfig {
    /// Validates the configuration, panicking with a descriptive message on
    /// nonsensical values. Called by [`BootstrapComparator::with_config`].
    pub fn validate(&self) {
        assert!(self.reps > 0, "bootstrap reps must be positive");
        assert!(!self.quantiles.is_empty(), "need at least one quantile");
        assert!(
            self.quantiles.iter().all(|q| (0.0..=1.0).contains(q)),
            "quantiles must lie in [0, 1]"
        );
        assert!(self.margin >= 0.0, "margin must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.dominance),
            "dominance must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.threshold),
            "threshold must lie in [0, 1]"
        );
    }
}

/// Bootstrap quantile-dominance comparator (the paper's default strategy).
///
/// Each call derives a fresh RNG from the base seed and an internal counter,
/// so a given comparator instance produces a deterministic *sequence* of
/// stochastic comparisons — experiments are reproducible end-to-end from one
/// seed while successive comparisons of the same pair may still disagree,
/// which is what the relative scores of Sec. III quantify.
///
/// # Fast path
///
/// A bootstrap round never materializes or sorts a resample: because
/// [`Sample`] maintains a sorted index, each resample is drawn as a count
/// vector over insertion order (same RNG draw sequence, so seeded
/// outcomes are **bit-identical** to the sort-based reference — see
/// [`compare_seeded_reference`](BootstrapComparator::compare_seeded_reference))
/// and quantiles are read by one cumulative walk over the sample's sorted
/// runs: O(n) per round with zero allocations at steady state, given a
/// reused [`Scratch`]. On a tiered sample the walk rides the leaf runs
/// directly, so comparison forces no lazy flat-view materialization. The
/// dominance vote and the repetition loop both exit as soon as the
/// outcome is decided.
///
/// # Examples
///
/// ```
/// use relperf_measure::{BootstrapComparator, Outcome, Sample, ThreeWayComparator};
///
/// let fast = Sample::new(vec![1.00, 1.02, 0.98, 1.01, 0.99]).unwrap();
/// let slow = Sample::new(vec![2.00, 2.02, 1.98, 2.01, 1.99]).unwrap();
/// let cmp = BootstrapComparator::new(42);
/// assert_eq!(cmp.compare(&fast, &slow), Outcome::Better);
/// assert_eq!(cmp.compare(&slow, &fast), Outcome::Worse);
/// assert_eq!(cmp.compare(&fast, &fast), Outcome::Equivalent);
/// ```
#[derive(Debug)]
pub struct BootstrapComparator {
    config: BootstrapConfig,
    base_seed: u64,
    counter: AtomicU64,
}

impl BootstrapComparator {
    /// Creates a comparator with the default configuration.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, BootstrapConfig::default())
    }

    /// Creates a comparator with an explicit configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see
    /// [`BootstrapConfig::validate`]).
    pub fn with_config(seed: u64, config: BootstrapConfig) -> Self {
        config.validate();
        BootstrapComparator {
            config,
            base_seed: seed,
            counter: AtomicU64::new(0),
        }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    fn rng_for_counter(&self, c: u64) -> StdRng {
        // SplitMix64 step decorrelates consecutive counters.
        StdRng::seed_from_u64(stream_seed(self.base_seed, c))
    }

    fn next_rng(&self) -> StdRng {
        let c = self.counter.fetch_add(1, Ordering::Relaxed);
        self.rng_for_counter(c)
    }

    /// The full bootstrap comparison driven by an explicit generator —
    /// the allocation-free O(n)-per-round fast path.
    ///
    /// The repetition loop locks in early: once the round-win lead is
    /// large enough (or the gap small enough) that no allocation of the
    /// remaining rounds can change which side of the threshold the final
    /// frequencies land on, the answer is already decided and the
    /// remaining rounds are skipped. The lock-in conditions use the
    /// *identical* float expressions as the final decision, and each
    /// per-round win count only moves monotonically, so the outcome is
    /// bit-identical to running every round (each comparison owns its
    /// RNG, so the skipped draws are observable to nobody).
    fn compare_with_rng(
        &self,
        rng: &mut StdRng,
        a: &Sample,
        b: &Sample,
        scratch: &mut Scratch,
    ) -> Outcome {
        scratch.plan_a.prepare(&self.config.quantiles, a.len());
        scratch.plan_b.prepare(&self.config.quantiles, b.len());
        let reps = self.config.reps;
        let threshold = self.config.threshold;
        let decide = |wa: usize, wb: usize| -> Outcome {
            let pa = wa as f64 / reps as f64;
            let pb = wb as f64 / reps as f64;
            if pa - pb > threshold {
                Outcome::Better
            } else if pb - pa > threshold {
                Outcome::Worse
            } else {
                Outcome::Equivalent
            }
        };
        let mut wins_a = 0usize;
        let mut wins_b = 0usize;
        for done in 1..=reps {
            match self.round(rng, a, b, scratch) {
                RoundResult::A => wins_a += 1,
                RoundResult::B => wins_b += 1,
                RoundResult::Tie => {}
            }
            let rem = reps - done;
            // Decided iff the best and worst remaining allocations agree.
            if decide(wins_a, wins_b + rem) == decide(wins_a + rem, wins_b) {
                break;
            }
        }
        decide(wins_a, wins_b)
    }

    /// Compares many pairs as one batch, fanning the bootstrap work out
    /// across threads while staying **bit-identical** to calling
    /// [`compare`](ThreeWayComparator::compare) on each pair in order.
    ///
    /// The batch reserves a contiguous block of the comparator's internal
    /// counter up front; pair `i` then derives its RNG from
    /// `counter_start + i` exactly as the serial path would, so the result
    /// vector does not depend on the [`Parallelism`] used — only the wall
    /// time does.
    ///
    /// # Examples
    ///
    /// ```
    /// use relperf_measure::compare::{BootstrapComparator, Parallelism, ThreeWayComparator};
    /// use relperf_measure::Sample;
    ///
    /// let fast = Sample::new(vec![1.00, 1.02, 0.98, 1.01, 0.99]).unwrap();
    /// let slow = Sample::new(vec![2.00, 2.02, 1.98, 2.01, 1.99]).unwrap();
    /// let pairs = vec![(&fast, &slow), (&slow, &fast), (&fast, &fast)];
    ///
    /// // Two comparators with the same seed: a parallel batch reproduces
    /// // the serial comparison sequence exactly.
    /// let batched = BootstrapComparator::new(42)
    ///     .compare_batch(&pairs, Parallelism::auto());
    /// let serial = BootstrapComparator::new(42);
    /// let reference: Vec<_> = pairs.iter().map(|(a, b)| serial.compare(a, b)).collect();
    /// assert_eq!(batched, reference);
    /// ```
    pub fn compare_batch(
        &self,
        pairs: &[(&Sample, &Sample)],
        parallelism: Parallelism,
    ) -> Vec<Outcome> {
        let start = self
            .counter
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        relperf_parallel::parallel_map_indexed_with(
            pairs.len(),
            parallelism,
            Scratch::new,
            |scratch, i| {
                let (a, b) = pairs[i];
                let mut rng = self.rng_for_counter(start + i as u64);
                self.compare_with_rng(&mut rng, a, b, scratch)
            },
        )
    }

    /// One bootstrap round, allocation-free and O(n): draw each resample
    /// as a count vector over the sample's cached sorted order (same RNG
    /// draw sequence as materializing the buffer — `n` uniform index
    /// draws per side), read the configured quantiles by one cumulative
    /// walk, and score the quantile-dominance vote for `a`, `b`, or a tie.
    ///
    /// The vote exits early as soon as a win is locked in (one side
    /// reached the needed count) or unreachable for both sides; the vote
    /// consumes no randomness, so early exit cannot perturb seeding.
    ///
    /// `scratch.plan_a` / `plan_b` must already be prepared for the two
    /// sample sizes (done once per comparison in `compare_with_rng`).
    fn round<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &Sample,
        b: &Sample,
        scratch: &mut Scratch,
    ) -> RoundResult {
        resample_id_counts_into(rng, a, &mut scratch.counts);
        scratch
            .plan_a
            .extract_sample_into(a, &scratch.counts, &mut scratch.stats, &mut scratch.q_a);
        resample_id_counts_into(rng, b, &mut scratch.counts);
        scratch
            .plan_b
            .extract_sample_into(b, &scratch.counts, &mut scratch.stats, &mut scratch.q_b);

        let q = self.config.quantiles.len();
        let needed = (self.config.dominance * q as f64).ceil() as usize;
        let needed = needed.max(1);
        let mut wins_a = 0usize;
        let mut wins_b = 0usize;
        for i in 0..q {
            let qa = scratch.q_a[i];
            let qb = scratch.q_b[i];
            let scale = qa.abs().min(qb.abs());
            let gap = self.config.margin * scale;
            if qa < qb - gap {
                wins_a += 1;
            } else if qb < qa - gap {
                wins_b += 1;
            }
            // `a` is checked first, mirroring the reference's post-loop
            // priority; `b` or a tie only lock in once `a` is out.
            if wins_a >= needed {
                return RoundResult::A;
            }
            let rem = q - i - 1;
            if wins_a + rem < needed {
                if wins_b >= needed {
                    return RoundResult::B;
                }
                if wins_b + rem < needed {
                    return RoundResult::Tie;
                }
            }
        }
        unreachable!("the vote decides at the last quantile (rem == 0)")
    }

    /// Sort-based **reference oracle** for one bootstrap round — the
    /// original O(n log n) implementation (materialize both resamples,
    /// sort, read quantiles, full vote). Kept so tests can pin the
    /// count-based fast path ([`round`](Self::round)) bit-identical to it
    /// for any seed; not used on any production path.
    fn round_reference<R: Rng + ?Sized>(&self, rng: &mut R, a: &Sample, b: &Sample) -> RoundResult {
        let mut buf_a = Vec::with_capacity(a.len());
        let mut buf_b = Vec::with_capacity(b.len());
        crate::bootstrap::resample_into(rng, a, &mut buf_a);
        crate::bootstrap::resample_into(rng, b, &mut buf_b);
        buf_a.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        buf_b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));

        let mut wins_a = 0usize;
        let mut wins_b = 0usize;
        for &q in &self.config.quantiles {
            let qa = quantile_sorted(&buf_a, q);
            let qb = quantile_sorted(&buf_b, q);
            let scale = qa.abs().min(qb.abs());
            let gap = self.config.margin * scale;
            if qa < qb - gap {
                wins_a += 1;
            } else if qb < qa - gap {
                wins_b += 1;
            }
        }
        let needed = (self.config.dominance * self.config.quantiles.len() as f64).ceil() as usize;
        let needed = needed.max(1);
        if wins_a >= needed {
            RoundResult::A
        } else if wins_b >= needed {
            RoundResult::B
        } else {
            RoundResult::Tie
        }
    }

    /// Sort-based reference implementation of
    /// [`compare_seeded`](SeededThreeWayComparator::compare_seeded): every
    /// round materializes, sorts, and fully votes, and every repetition
    /// runs. This is the **test oracle** the allocation-free fast path is
    /// pinned against (golden and property tests assert bit-identical
    /// outcomes for any stream); production callers should use
    /// `compare_seeded`.
    pub fn compare_seeded_reference(&self, a: &Sample, b: &Sample, stream: u64) -> Outcome {
        let mut rng = StdRng::seed_from_u64(stream_seed(self.base_seed, stream));
        let mut wins_a = 0usize;
        let mut wins_b = 0usize;
        for _ in 0..self.config.reps {
            match self.round_reference(&mut rng, a, b) {
                RoundResult::A => wins_a += 1,
                RoundResult::B => wins_b += 1,
                RoundResult::Tie => {}
            }
        }
        let pa = wins_a as f64 / self.config.reps as f64;
        let pb = wins_b as f64 / self.config.reps as f64;
        if pa - pb > self.config.threshold {
            Outcome::Better
        } else if pb - pa > self.config.threshold {
            Outcome::Worse
        } else {
            Outcome::Equivalent
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RoundResult {
    A,
    B,
    Tie,
}

impl ThreeWayComparator for BootstrapComparator {
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome {
        let mut rng = self.next_rng();
        let mut scratch = Scratch::new();
        self.compare_with_rng(&mut rng, a, b, &mut scratch)
    }
}

impl SeededThreeWayComparator for BootstrapComparator {
    /// Pure-function comparison: the RNG derives from the comparator's base
    /// seed and `stream` only, leaving the internal sequence counter
    /// untouched.
    fn compare_seeded(&self, a: &Sample, b: &Sample, stream: u64) -> Outcome {
        let mut scratch = Scratch::new();
        self.compare_seeded_scratch(&mut scratch, a, b, stream)
    }
}

impl ScratchThreeWayComparator for BootstrapComparator {
    type Scratch = Scratch;

    fn new_scratch(&self) -> Scratch {
        Scratch::new()
    }

    fn compare_seeded_scratch(
        &self,
        scratch: &mut Scratch,
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome {
        let mut rng = StdRng::seed_from_u64(stream_seed(self.base_seed, stream));
        self.compare_with_rng(&mut rng, a, b, scratch)
    }
}

/// TOST-style comparator on bootstrap confidence intervals of the mean:
/// `a` is better when its CI lies entirely below `b`'s CI by more than the
/// relative margin; overlapping CIs are equivalent.
///
/// A simpler, more classical alternative to [`BootstrapComparator`]; used by
/// the sensitivity experiments to show the clustering is robust to the
/// comparator choice.
#[derive(Debug)]
pub struct MeanCiComparator {
    /// Number of bootstrap repetitions per CI.
    pub reps: usize,
    /// Confidence level of each CI.
    pub level: f64,
    /// Relative equivalence margin on the CI gap.
    pub margin: f64,
    base_seed: u64,
    counter: AtomicU64,
}

impl MeanCiComparator {
    /// Creates a mean-CI comparator with the given seed and defaults
    /// (`reps=200`, `level=0.95`, `margin=0.01`).
    pub fn new(seed: u64) -> Self {
        MeanCiComparator {
            reps: 200,
            level: 0.95,
            margin: 0.01,
            base_seed: seed,
            counter: AtomicU64::new(0),
        }
    }
}

impl MeanCiComparator {
    fn compare_with_rng(&self, rng: &mut StdRng, a: &Sample, b: &Sample) -> Outcome {
        let ca = crate::bootstrap::mean_ci(rng, a, self.reps, self.level);
        let cb = crate::bootstrap::mean_ci(rng, b, self.reps, self.level);
        let gap = self.margin * ca.lo.abs().min(cb.lo.abs());
        if ca.hi + gap < cb.lo {
            Outcome::Better
        } else if cb.hi + gap < ca.lo {
            Outcome::Worse
        } else {
            Outcome::Equivalent
        }
    }
}

impl ThreeWayComparator for MeanCiComparator {
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome {
        let c = self.counter.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(c.wrapping_mul(0x9E37)));
        self.compare_with_rng(&mut rng, a, b)
    }
}

impl SeededThreeWayComparator for MeanCiComparator {
    fn compare_seeded(&self, a: &Sample, b: &Sample, stream: u64) -> Outcome {
        let mut rng = StdRng::seed_from_u64(stream_seed(self.base_seed, stream));
        self.compare_with_rng(&mut rng, a, b)
    }
}

impl ScratchThreeWayComparator for MeanCiComparator {
    /// No reusable working memory (the bootstrap CI allocates its own
    /// stats vector per call).
    type Scratch = ();

    fn new_scratch(&self) {}

    fn compare_seeded_scratch(
        &self,
        (): &mut (),
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome {
        self.compare_seeded(a, b, stream)
    }
}

/// Deterministic comparator on medians with a relative equivalence band —
/// useful in tests and for noise-free simulated measurements.
#[derive(Debug, Clone)]
pub struct MedianComparator {
    /// Relative band within which two medians count as equivalent.
    pub rel_tolerance: f64,
}

impl MedianComparator {
    /// Creates a median comparator with the given relative tolerance.
    pub fn new(rel_tolerance: f64) -> Self {
        assert!(rel_tolerance >= 0.0, "tolerance must be non-negative");
        MedianComparator { rel_tolerance }
    }
}

impl ThreeWayComparator for MedianComparator {
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome {
        let ma = a.median();
        let mb = b.median();
        let gap = self.rel_tolerance * ma.abs().min(mb.abs());
        if ma < mb - gap {
            Outcome::Better
        } else if mb < ma - gap {
            Outcome::Worse
        } else {
            Outcome::Equivalent
        }
    }
}

impl SeededThreeWayComparator for MedianComparator {
    /// Deterministic comparator: the stream id is irrelevant.
    fn compare_seeded(&self, a: &Sample, b: &Sample, _stream: u64) -> Outcome {
        self.compare(a, b)
    }
}

impl ScratchThreeWayComparator for MedianComparator {
    /// Deterministic and O(1) — no working memory.
    type Scratch = ();

    fn new_scratch(&self) {}

    fn compare_seeded_scratch(
        &self,
        (): &mut (),
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome {
        self.compare_seeded(a, b, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(center: f64, spread: f64, n: usize, seed: u64) -> Sample {
        let mut rng = StdRng::seed_from_u64(seed);
        Sample::new(
            (0..n)
                .map(|_| center + rng.random_range(-spread..spread))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn outcome_invert_and_symbols() {
        assert_eq!(Outcome::Better.invert(), Outcome::Worse);
        assert_eq!(Outcome::Worse.invert(), Outcome::Better);
        assert_eq!(Outcome::Equivalent.invert(), Outcome::Equivalent);
        assert_eq!(Outcome::Better.to_string(), ">");
        assert_eq!(Outcome::Equivalent.to_string(), "~");
    }

    #[test]
    fn separated_distributions_are_better_worse() {
        let cmp = BootstrapComparator::new(71);
        let fast = noisy(1.0, 0.05, 50, 1);
        let slow = noisy(2.0, 0.05, 50, 2);
        assert_eq!(cmp.compare(&fast, &slow), Outcome::Better);
        assert_eq!(cmp.compare(&slow, &fast), Outcome::Worse);
    }

    #[test]
    fn identical_distributions_are_equivalent() {
        let cmp = BootstrapComparator::new(72);
        let a = noisy(1.0, 0.1, 50, 3);
        let b = noisy(1.0, 0.1, 50, 4);
        assert_eq!(cmp.compare(&a, &b), Outcome::Equivalent);
    }

    #[test]
    fn heavily_overlapping_distributions_are_equivalent() {
        // b is a 0.5% elementwise shift of a — far inside the 2% margin.
        let cmp = BootstrapComparator::new(73);
        let a = noisy(1.00, 0.3, 40, 5);
        let b = Sample::new(a.values().iter().map(|v| v * 1.005).collect()).unwrap();
        assert_eq!(cmp.compare(&a, &b), Outcome::Equivalent);
    }

    #[test]
    fn comparator_sequence_is_deterministic() {
        let a = noisy(1.0, 0.2, 30, 7);
        let b = noisy(1.1, 0.2, 30, 8);
        let run = |seed: u64| {
            let cmp = BootstrapComparator::new(seed);
            (0..10).map(|_| cmp.compare(&a, &b)).collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn borderline_pair_flips_between_outcomes() {
        // Engineered overlap: with N small and distributions close, repeated
        // comparisons must disagree at least once — the effect the paper's
        // relative scores quantify (Sec. III, N=30 discussion). Fewer
        // bootstrap rounds widen the flip band around the τ boundary. The
        // 5% shift sits in that band for the workspace StdRng streams.
        let a = noisy(1.000, 0.10, 30, 9);
        let b = noisy(1.050, 0.10, 30, 10);
        let cfg = BootstrapConfig {
            reps: 20,
            ..Default::default()
        };
        let cmp = BootstrapComparator::with_config(74, cfg);
        let outcomes: Vec<Outcome> = (0..60).map(|_| cmp.compare(&a, &b)).collect();
        let distinct: std::collections::HashSet<_> = outcomes.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "expected stochastic flips, got only {distinct:?}"
        );
    }

    #[test]
    fn antisymmetry_holds_statistically() {
        let a = noisy(1.0, 0.05, 40, 11);
        let b = noisy(1.5, 0.05, 40, 12);
        let cmp = BootstrapComparator::new(75);
        for _ in 0..5 {
            let ab = cmp.compare(&a, &b);
            let ba = cmp.compare(&b, &a);
            assert_eq!(ab, ba.invert());
        }
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let bad = BootstrapConfig {
            reps: 0,
            ..Default::default()
        };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
        let bad = BootstrapConfig {
            quantiles: vec![1.5],
            ..Default::default()
        };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
        let bad = BootstrapConfig {
            margin: -0.1,
            ..Default::default()
        };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
    }

    #[test]
    fn mean_ci_comparator_on_separated_and_overlapping() {
        let cmp = MeanCiComparator::new(76);
        let fast = noisy(1.0, 0.02, 40, 13);
        let slow = noisy(1.5, 0.02, 40, 14);
        assert_eq!(cmp.compare(&fast, &slow), Outcome::Better);
        assert_eq!(cmp.compare(&slow, &fast), Outcome::Worse);
        let other = noisy(1.001, 0.02, 40, 15);
        assert_eq!(cmp.compare(&fast, &other), Outcome::Equivalent);
    }

    #[test]
    fn median_comparator_deterministic() {
        let cmp = MedianComparator::new(0.05);
        let a = Sample::new(vec![1.0, 1.0, 1.0]).unwrap();
        let b = Sample::new(vec![2.0, 2.0, 2.0]).unwrap();
        let c = Sample::new(vec![1.02, 1.02, 1.02]).unwrap();
        assert_eq!(cmp.compare(&a, &b), Outcome::Better);
        assert_eq!(cmp.compare(&b, &a), Outcome::Worse);
        assert_eq!(cmp.compare(&a, &c), Outcome::Equivalent);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn median_comparator_rejects_negative_tolerance() {
        MedianComparator::new(-1.0);
    }

    #[test]
    fn compare_batch_matches_serial_sequence_for_any_parallelism() {
        let a = noisy(1.0, 0.2, 30, 21);
        let b = noisy(1.1, 0.2, 30, 22);
        let c = noisy(2.0, 0.1, 30, 23);
        let pairs: Vec<(&Sample, &Sample)> = vec![
            (&a, &b),
            (&b, &a),
            (&a, &c),
            (&c, &a),
            (&b, &c),
            (&a, &a),
            (&b, &b),
        ];
        let reference: Vec<Outcome> = {
            let cmp = BootstrapComparator::new(91);
            pairs.iter().map(|&(x, y)| cmp.compare(x, y)).collect()
        };
        for par in [
            Parallelism::serial(),
            Parallelism::auto(),
            Parallelism::with_threads(3),
            Parallelism { threads: 2, chunk: 1 },
        ] {
            let cmp = BootstrapComparator::new(91);
            assert_eq!(cmp.compare_batch(&pairs, par), reference, "{par:?}");
        }
    }

    #[test]
    fn compare_batch_advances_the_comparator_counter() {
        // A batch must consume exactly pairs.len() counter slots, so serial
        // comparisons made after the batch continue the same sequence.
        let a = noisy(1.0, 0.2, 30, 24);
        let b = noisy(1.1, 0.2, 30, 25);
        let pairs: Vec<(&Sample, &Sample)> = vec![(&a, &b), (&b, &a)];

        let batched = BootstrapComparator::new(17);
        let mut first = batched.compare_batch(&pairs, Parallelism::auto());
        first.push(batched.compare(&a, &b));

        let serial = BootstrapComparator::new(17);
        let reference: Vec<Outcome> = vec![
            serial.compare(&a, &b),
            serial.compare(&b, &a),
            serial.compare(&a, &b),
        ];
        assert_eq!(first, reference);
    }

    #[test]
    fn compare_seeded_is_order_independent_and_stream_sensitive() {
        // The borderline pair of `borderline_pair_flips_between_outcomes`:
        // close enough that different streams must disagree.
        let a = noisy(1.000, 0.10, 30, 9);
        let b = noisy(1.050, 0.10, 30, 10);
        let cfg = || BootstrapConfig {
            reps: 20,
            ..Default::default()
        };
        let cmp = BootstrapComparator::with_config(33, cfg());
        let forward: Vec<Outcome> = (0..20).map(|s| cmp.compare_seeded(&a, &b, s)).collect();
        // Interleave unrelated calls and query in reverse: same answers —
        // compare_seeded must not depend on the internal counter.
        let other = BootstrapComparator::with_config(33, cfg());
        let _ = other.compare(&a, &b);
        let backward: Vec<Outcome> = (0..20)
            .rev()
            .map(|s| other.compare_seeded(&a, &b, s))
            .collect();
        let backward: Vec<Outcome> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // Distinct streams genuinely vary for this borderline pair; a
        // regression that ignored the stream id would collapse them.
        let distinct: std::collections::HashSet<_> = forward.iter().copied().collect();
        assert!(distinct.len() >= 2, "streams collapsed to {distinct:?}");
    }

    #[test]
    fn fast_path_is_bit_identical_to_sort_based_reference() {
        // The count-based O(n) round vs. the materializing O(n log n)
        // oracle: same streams, same outcomes — across separated,
        // borderline, and identical pairs, odd/even sizes, and unequal
        // sample lengths.
        let pairs = [
            (noisy(1.0, 0.05, 50, 1), noisy(2.0, 0.05, 50, 2)),
            (noisy(1.000, 0.10, 30, 9), noisy(1.050, 0.10, 30, 10)),
            (noisy(1.0, 0.1, 31, 3), noisy(1.0, 0.1, 47, 4)),
            (noisy(1.0, 0.3, 7, 5), noisy(1.01, 0.3, 7, 6)),
        ];
        for (reps, seed) in [(20usize, 74u64), (100, 42)] {
            let cfg = BootstrapConfig {
                reps,
                ..Default::default()
            };
            let cmp = BootstrapComparator::with_config(seed, cfg);
            let mut scratch = Scratch::new();
            for (a, b) in &pairs {
                for stream in 0..40u64 {
                    let reference = cmp.compare_seeded_reference(a, b, stream);
                    assert_eq!(
                        cmp.compare_seeded(a, b, stream),
                        reference,
                        "seed {seed} stream {stream}"
                    );
                    // The scratch-reusing entry point agrees too, with one
                    // arena shared across all pairs and streams.
                    assert_eq!(
                        cmp.compare_seeded_scratch(&mut scratch, a, b, stream),
                        reference,
                        "scratch path, seed {seed} stream {stream}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_path_handles_single_element_and_tied_samples() {
        let cmp = BootstrapComparator::new(7);
        let one = Sample::new(vec![1.0]).unwrap();
        let two = Sample::new(vec![2.0]).unwrap();
        let tied = Sample::new(vec![3.0; 12]).unwrap();
        for (a, b) in [(&one, &two), (&two, &one), (&one, &one), (&tied, &tied)] {
            for stream in 0..10 {
                assert_eq!(
                    cmp.compare_seeded(a, b, stream),
                    cmp.compare_seeded_reference(a, b, stream)
                );
            }
        }
    }

    #[test]
    fn extreme_dominance_and_threshold_configs_match_reference() {
        // Stress the early-exit logic: dominance 0 (one quantile win
        // decides a round), dominance 1 (all must win), threshold 0
        // (any lead decides), threshold 1 (nothing ever decides).
        let a = noisy(1.00, 0.10, 25, 31);
        let b = noisy(1.03, 0.10, 25, 32);
        for dominance in [0.0, 0.4, 1.0] {
            for threshold in [0.0, 0.5, 1.0] {
                let cfg = BootstrapConfig {
                    reps: 30,
                    dominance,
                    threshold,
                    ..Default::default()
                };
                let cmp = BootstrapComparator::with_config(9, cfg);
                for stream in 0..20 {
                    assert_eq!(
                        cmp.compare_seeded(&a, &b, stream),
                        cmp.compare_seeded_reference(&a, &b, stream),
                        "dominance {dominance} threshold {threshold} stream {stream}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_margin_still_behaves() {
        let cfg = BootstrapConfig {
            margin: 0.0,
            ..Default::default()
        };
        let cmp = BootstrapComparator::with_config(77, cfg);
        let fast = noisy(1.0, 0.01, 40, 16);
        let slow = noisy(3.0, 0.01, 40, 17);
        assert_eq!(cmp.compare(&fast, &slow), Outcome::Better);
    }
}
