//! Shared harness code for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one paper artifact (the
//! top-level ARCHITECTURE.md lists which binary produces which figure or
//! table); the helpers here keep their output formats consistent so the
//! outputs can be quoted directly.

#![warn(missing_docs)]

use rand::prelude::*;
use relperf_core::cluster::{ClusterConfig, Parallelism, ScoreTable};
use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
use relperf_workloads::experiment::{
    cluster_measurements, cluster_measurements_seeded, measure_all, measure_all_seeded,
    Experiment, MeasuredAlgorithm,
};

/// Standard seed for all experiment binaries — every number in
/// EXPERIMENTS.md is reproducible from this.
pub const SEED: u64 = 1234;

/// The comparator configuration used by the experiment binaries: 30
/// bootstrap rounds keeps borderline pairs visibly stochastic, matching the
/// paper's N=30 discussion.
pub fn paper_comparator(seed: u64) -> BootstrapComparator {
    BootstrapComparator::with_config(
        seed,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    )
}

/// Measures an experiment and clusters it with the standard pipeline.
/// Returns the measurements and the relative-score table.
pub fn run_pipeline(
    exp: &Experiment,
    n_measurements: usize,
    repetitions: usize,
    seed: u64,
) -> (Vec<MeasuredAlgorithm>, ScoreTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let measured = measure_all(exp, n_measurements, &mut rng);
    let comparator = paper_comparator(seed ^ 0xC0FF_EE);
    let table = cluster_measurements(
        &measured,
        &comparator,
        ClusterConfig::with_repetitions(repetitions),
        &mut rng,
    );
    (measured, table)
}

/// [`run_pipeline`] on the parallel engine: measurement fans out across
/// placements and the clustering repetitions across threads
/// (`measure_all_seeded` + `cluster_measurements_seeded`). The result is
/// bit-identical for any thread count, but *not* to [`run_pipeline`],
/// whose legacy path threads a single RNG through all stages.
pub fn run_pipeline_seeded(
    exp: &Experiment,
    n_measurements: usize,
    repetitions: usize,
    seed: u64,
    parallelism: Parallelism,
) -> (Vec<MeasuredAlgorithm>, ScoreTable) {
    let measured = measure_all_seeded(exp, n_measurements, seed, parallelism);
    let comparator = paper_comparator(seed ^ 0xC0FF_EE);
    let table = cluster_measurements_seeded(
        &measured,
        &comparator,
        ClusterConfig {
            repetitions,
            parallelism,
            ..Default::default()
        },
        seed ^ 0xC1_05_7E,
    );
    (measured, table)
}

/// Prints a section header in the shared format.
pub fn header(title: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Prints the per-algorithm mean/sd summary table.
pub fn print_summary(measured: &[MeasuredAlgorithm]) {
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>14} {:>12}",
        "alg", "mean [s]", "sd [s]", "cv [%]", "device MFLOPs", "cost"
    );
    for m in measured {
        println!(
            "{:<6} {:>12.6} {:>12.6} {:>8.2} {:>14.2} {:>12.5}",
            m.label,
            m.sample.mean(),
            m.sample.std_dev(),
            100.0 * m.sample.coeff_of_variation(),
            m.record.device_flops as f64 / 1e6,
            m.record.operating_cost,
        );
    }
}

/// Prints the relative-score clusters in the paper's Table I layout.
pub fn print_clusters(table: &ScoreTable, measured: &[MeasuredAlgorithm]) {
    println!("\nCluster  Algorithm  Relative Score");
    for (i, cluster) in table.clusters().iter().enumerate() {
        let mut first = true;
        for &(alg, score) in cluster {
            println!(
                "{:<8} alg{:<7} {:.2}",
                if first { format!("C{}", i + 1) } else { String::new() },
                measured[alg].label,
                score
            );
            first = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_smoke_test() {
        let exp = Experiment::table1(2);
        let (measured, table) = run_pipeline(&exp, 10, 10, SEED);
        assert_eq!(measured.len(), 8);
        assert_eq!(table.num_algorithms(), 8);
        print_summary(&measured);
        print_clusters(&table, &measured);
    }

    #[test]
    fn pipeline_is_reproducible() {
        let exp = Experiment::fig1();
        let (_, t1) = run_pipeline(&exp, 10, 5, 7);
        let (_, t2) = run_pipeline(&exp, 10, 5, 7);
        assert_eq!(t1, t2);
    }
}
