//! BLAS level-1 and level-2 style kernels on slices and [`Matrix`].

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Dot product of two equally-long slices.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Unrolled by four to give LLVM an easy vectorization target; the
    // remainder loop handles lengths that are not multiples of four.
    let chunks = x.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y ← a·x + y` for slices, with the workspace-wide fused multiply-add
/// [`crate::fmadd`] per element — the same op the blocked kernel engine
/// uses, which is what keeps row-sweep solves and reflector applications
/// bit-identical to their per-element reference loops.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = crate::fmadd(a, xi, *yi);
    }
}

/// Euclidean (2-)norm of a slice, computed with scaling to avoid overflow.
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0_f64;
    let mut ssq = 1.0_f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// 1-norm (sum of absolute values) of a slice.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (maximum absolute value) of a slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Matrix-vector product `A·x`.
///
/// Returns [`LinalgError::ShapeMismatch`] when `x.len() != A.cols()`.
pub fn gemv(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if x.len() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = Vec::with_capacity(a.rows());
    for i in 0..a.rows() {
        y.push(dot(a.row(i), x));
    }
    Ok(y)
}

/// Transposed matrix-vector product `Aᵀ·x`.
///
/// Returns [`LinalgError::ShapeMismatch`] when `x.len() != A.rows()`.
pub fn gemv_t(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if x.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemv_t",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; a.cols()];
    for i in 0..a.rows() {
        axpy(x[i], a.row(i), &mut y);
    }
    Ok(y)
}

/// Rank-1 update `A ← A + α·x·yᵀ`.
///
/// Returns [`LinalgError::ShapeMismatch`] unless `x.len() == A.rows()` and
/// `y.len() == A.cols()`.
pub fn ger(a: &mut Matrix, alpha: f64, x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != a.rows() || y.len() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "ger",
            lhs: a.shape(),
            rhs: (x.len(), y.len()),
        });
    }
    for i in 0..a.rows() {
        let s = alpha * x[i];
        axpy(s, y, a.row_mut(i));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_unrolled_path() {
        // Length 9 exercises both the unrolled body and the remainder loop.
        let x: Vec<f64> = (1..=9).map(|v| v as f64).collect();
        let y = vec![1.0; 9];
        assert_eq!(dot(&x, &y), 45.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm2_scaled_against_naive() {
        let x = vec![3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-12);
        // Values that would overflow a naive sum of squares.
        let big = vec![1e200, 1e200];
        assert!((norm2(&big) - (2.0_f64).sqrt() * 1e200).abs() < 1e186);
    }

    #[test]
    fn norm1_and_inf() {
        let x = vec![-1.0, 2.0, -3.0];
        assert_eq!(norm1(&x), 6.0);
        assert_eq!(norm_inf(&x), 3.0);
    }

    #[test]
    fn norms_of_zero_vector() {
        let z = vec![0.0; 5];
        assert_eq!(norm2(&z), 0.0);
        assert_eq!(norm1(&z), 0.0);
        assert_eq!(norm_inf(&z), 0.0);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(gemv(&a, &[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64);
        let x = vec![1.0, -1.0, 2.0];
        let direct = gemv_t(&a, &x).unwrap();
        let via_t = gemv(&a.transpose(), &x).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn gemv_shape_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(gemv(&a, &[1.0, 2.0]).is_err());
        assert!(gemv_t(&a, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn ger_rank1_update() {
        let mut a = Matrix::zeros(2, 2);
        ger(&mut a, 2.0, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn ger_shape_errors() {
        let mut a = Matrix::zeros(2, 2);
        assert!(ger(&mut a, 1.0, &[1.0], &[1.0, 2.0]).is_err());
    }
}
