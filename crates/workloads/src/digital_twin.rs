//! Digital-twin / multi-scale modelling workload (paper Sec. I,
//! application 1).
//!
//! "Solving a hierarchy of such problems (where results from one
//! simulation are used to solve the next one) with varying computational
//! volumes is known as multi-scale modelling." This generator produces a
//! chain of simulation stages whose problem sizes follow a configurable
//! geometric hierarchy (coarse → fine), each stage an RLS `MathTask`
//! feeding its penalty into the next — a synthetic but structurally
//! faithful digital-twin update loop.

use crate::mathtask::simulated_task;
use relperf_sim::{enumerate_placements, placement_label, Loc, Task};

/// Configuration of a multi-scale hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiScaleConfig {
    /// Number of scales (stages in the chain).
    pub stages: usize,
    /// Matrix size of the coarsest stage.
    pub base_size: usize,
    /// Size growth factor per stage (e.g. 2.0 doubles the resolution).
    pub growth: f64,
    /// RLS loop iterations per stage.
    pub iters_per_stage: usize,
}

impl Default for MultiScaleConfig {
    fn default() -> Self {
        MultiScaleConfig {
            stages: 4,
            base_size: 40,
            growth: 2.0,
            iters_per_stage: 5,
        }
    }
}

impl MultiScaleConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero stages/sizes/iterations or growth < 1.
    pub fn validate(&self) {
        assert!(self.stages > 0, "need at least one stage");
        assert!(self.base_size > 0, "base size must be positive");
        assert!(self.growth >= 1.0, "hierarchy must be non-shrinking");
        assert!(self.iters_per_stage > 0, "need at least one iteration");
    }

    /// Matrix size of stage `i` (0-based).
    pub fn stage_size(&self, i: usize) -> usize {
        (self.base_size as f64 * self.growth.powi(i as i32)).round() as usize
    }
}

/// Builds the task chain of the hierarchy (coarse first, like a multigrid
/// refinement sweep).
pub fn tasks(config: &MultiScaleConfig) -> Vec<Task> {
    config.validate();
    (0..config.stages)
        .map(|i| {
            simulated_task(
                &format!("scale{}", i + 1),
                config.stage_size(i),
                config.iters_per_stage,
            )
        })
        .collect()
}

/// All `2^stages` placements with paper-style labels.
///
/// # Panics
/// Panics when `stages` exceeds 16 — a 65 536-algorithm exhaustive sweep is
/// the "exponential explosion" case the paper's conclusion defers to
/// guided search, not something to enumerate by accident.
pub fn placements(config: &MultiScaleConfig) -> Vec<(String, Vec<Loc>)> {
    assert!(
        config.stages <= 16,
        "placement enumeration is exponential; use a subset strategy beyond 16 stages"
    );
    enumerate_placements(config.stages)
        .into_iter()
        .map(|p| (placement_label(&p), p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hierarchy_grows_geometrically() {
        let c = MultiScaleConfig::default();
        assert_eq!(c.stage_size(0), 40);
        assert_eq!(c.stage_size(1), 80);
        assert_eq!(c.stage_size(3), 320);
        let ts = tasks(&c);
        assert_eq!(ts.len(), 4);
        for w in ts.windows(2) {
            assert!(w[1].flops_per_iter > w[0].flops_per_iter);
            assert!(w[1].working_set_bytes > w[0].working_set_bytes);
        }
    }

    #[test]
    fn non_integer_growth() {
        let c = MultiScaleConfig {
            growth: 1.5,
            ..Default::default()
        };
        assert_eq!(c.stage_size(1), 60);
        assert_eq!(c.stage_size(2), 90);
    }

    #[test]
    fn placement_count_is_exponential() {
        let c = MultiScaleConfig {
            stages: 3,
            ..Default::default()
        };
        assert_eq!(placements(&c).len(), 8);
        let c5 = MultiScaleConfig {
            stages: 5,
            ..Default::default()
        };
        assert_eq!(placements(&c5).len(), 32);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn refuses_huge_enumeration() {
        let c = MultiScaleConfig {
            stages: 17,
            ..Default::default()
        };
        placements(&c);
    }

    #[test]
    #[should_panic(expected = "non-shrinking")]
    fn rejects_shrinking_hierarchy() {
        MultiScaleConfig {
            growth: 0.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn end_to_end_on_platform() {
        use rand::prelude::*;
        let c = MultiScaleConfig {
            stages: 3,
            base_size: 20,
            growth: 2.0,
            iters_per_stage: 2,
        };
        let platform = relperf_sim::presets::table1_platform();
        let ts = tasks(&c);
        let mut rng = StdRng::seed_from_u64(181);
        for (label, placement) in placements(&c) {
            let rec = platform.execute(&ts, &placement, &mut rng);
            assert!(rec.total_time_s > 0.0, "{label} produced no time");
        }
    }
}
