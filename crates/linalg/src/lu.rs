//! LU factorization with partial pivoting.
//!
//! [`Lu::factor`] is a right-looking **panel-blocked** factorization whose
//! trailing updates run through the packed microkernel engine in
//! [`crate::gemm`]; [`Lu::factor_reference`] is the classic unblocked
//! loop. Both pick the same pivots and apply, per element, the same fused
//! operations in the same order, so the packed factors and permutation are
//! **bit-identical** (property-tested).

use crate::blas::axpy;
use crate::error::{LinalgError, Result};
use crate::gemm::{gemm_region, gemm_region_parallel, Acc, PackArena};
use crate::matrix::Matrix;
use relperf_parallel::Parallelism;

/// Panel width of the blocked factorization.
const PANEL: usize = 32;

/// The factorization `P·A = L·U` with partial (row) pivoting, stored packed:
/// `L` (unit diagonal, implicit) in the strict lower triangle and `U` in the
/// upper triangle of a single matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Lu {
    packed: Matrix,
    /// Row permutation: `perm[i]` is the original index of pivoted row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, `+1.0` or `-1.0` (used by the determinant).
    perm_sign: f64,
}

/// Pivot magnitude below which the matrix is declared singular.
pub const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factors `a` with partial pivoting, right-looking and panel-blocked:
    /// each panel of 32 columns is factored with the scalar reference
    /// loops (row swaps outside the panel deferred), then the `U12` block
    /// row is finished by forward substitution and the trailing submatrix
    /// absorbs `−L21·U12` through the packed microkernel engine.
    ///
    /// Pivot choices, the permutation, and every packed value are
    /// **bit-identical** to [`Lu::factor_reference`]: pivots are selected
    /// from identical column values, and per element every update is the
    /// same fused multiply-add applied in the same pivot order.
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular inputs and
    /// [`LinalgError::Singular`] when no acceptable pivot exists in some
    /// column.
    pub fn factor(a: &Matrix) -> Result<Self> {
        Self::factor_impl(a, None)
    }

    /// [`Lu::factor`] with the trailing `−L21·U12` updates fanned out over
    /// row blocks (`gemm_region_parallel`) — the panel factorization and
    /// `U12` sweep stay serial (they are O(n·PANEL²) next to the O(n³)
    /// trailing update). Bit-identical to [`Lu::factor`] and
    /// [`Lu::factor_reference`] for any [`Parallelism`], including the
    /// serial fallback build: each trailing element's fused update sequence
    /// is unchanged, only which thread computes its row band differs.
    pub fn factor_parallel_with(a: &Matrix, parallelism: Parallelism) -> Result<Self> {
        Self::factor_impl(a, Some(parallelism))
    }

    fn factor_impl(a: &Matrix, parallelism: Option<Parallelism>) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "lu",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let mut arena = PackArena::new();
        let mut swaps: Vec<(usize, usize)> = Vec::new();

        for j0 in (0..n).step_by(PANEL) {
            let j1 = (j0 + PANEL).min(n);
            swaps.clear();

            // Panel factorization (columns j0..j1, rows j0..n). Row swaps
            // touch only the panel columns here; the rest of each row is
            // swapped afterwards — values are identical either way, since
            // the deferred columns are not read inside the panel.
            for k in j0..j1 {
                let mut p = k;
                let mut pmax = m[(k, k)].abs();
                for i in (k + 1)..n {
                    let v = m[(i, k)].abs();
                    if v > pmax {
                        pmax = v;
                        p = i;
                    }
                }
                if pmax < PIVOT_TOL {
                    return Err(LinalgError::Singular { op: "lu", pivot: k });
                }
                if p != k {
                    for j in j0..j1 {
                        let t = m[(k, j)];
                        m[(k, j)] = m[(p, j)];
                        m[(p, j)] = t;
                    }
                    swaps.push((k, p));
                    perm.swap(k, p);
                    sign = -sign;
                }
                let pivot = m[(k, k)];
                for i in (k + 1)..n {
                    let (head, rest) = m.split_rows_mut(i);
                    let rowk = &head[k * n..(k + 1) * n];
                    let rowi = &mut rest[..n];
                    let factor = rowi[k] / pivot;
                    rowi[k] = factor;
                    for (x, &u) in rowi[k + 1..j1].iter_mut().zip(&rowk[k + 1..j1]) {
                        *x = crate::fmadd(-factor, u, *x);
                    }
                }
            }

            // Apply the deferred swaps to the columns outside the panel,
            // in the order they were recorded.
            for &(k, p) in &swaps {
                let (left, right) = (0..j0, j1..n);
                for j in left.chain(right) {
                    let t = m[(k, j)];
                    m[(k, j)] = m[(p, j)];
                    m[(p, j)] = t;
                }
            }

            if j1 >= n {
                break;
            }

            // U12 (rows j0..j1, columns j1..n): forward substitution with
            // the unit-lower panel, subtracting pivots in ascending order —
            // exactly the updates the reference applied one pivot at a time.
            for i in j0..j1 {
                let (head, rest) = m.split_rows_mut(i);
                let rowi = &mut rest[..n];
                let (rowi_l, rowi_t) = rowi.split_at_mut(j1);
                for kk in j0..i {
                    axpy(-rowi_l[kk], &head[kk * n + j1..(kk + 1) * n], rowi_t);
                }
            }

            // Trailing update (rows j1..n, columns j1..n): −L21·U12 through
            // the microkernel engine. L21 is copied out because the engine
            // must not read from its output region's buffer.
            let nb = j1 - j0;
            let rows = n - j1;
            let mut l21 = vec![0.0; rows * nb];
            for (dst, src) in l21
                .chunks_exact_mut(nb)
                .zip(m.tile_rows(j1, j0, rows, nb))
            {
                dst.copy_from_slice(src);
            }
            let (panel_rows, trailing) = m.split_rows_mut(j1);
            let b_src = &panel_rows[j0 * n..];
            match parallelism {
                None => gemm_region(
                    trailing, n, 0, j1, rows, n - j1, nb, &l21, nb, 0, 0, false, b_src, n, 0,
                    j1, false, Acc::Sub, &mut arena,
                ),
                Some(par) => gemm_region_parallel(
                    trailing, n, 0, j1, rows, n - j1, nb, &l21, nb, 0, 0, false, b_src, n, 0,
                    j1, false, Acc::Sub, &mut arena, par,
                ),
            }
        }
        Ok(Lu {
            packed: m,
            perm,
            perm_sign: sign,
        })
    }

    /// The classic unblocked right-looking factorization, kept as the
    /// oracle the blocked [`Lu::factor`] is property-tested against and as
    /// the `Reference` engine path of the measured workloads.
    pub fn factor_reference(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "lu",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Find the largest pivot in column k at or below the diagonal.
            let mut p = k;
            let mut pmax = m[(k, k)].abs();
            for i in (k + 1)..n {
                let v = m[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < PIVOT_TOL {
                return Err(LinalgError::Singular { op: "lu", pivot: k });
            }
            if p != k {
                // Swap rows k and p of the working matrix and the permutation.
                for j in 0..n {
                    let t = m[(k, j)];
                    m[(k, j)] = m[(p, j)];
                    m[(p, j)] = t;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                for j in (k + 1)..n {
                    let u = m[(k, j)];
                    m[(i, j)] = crate::fmadd(-factor, u, m[(i, j)]);
                }
            }
        }
        Ok(Lu {
            packed: m,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Extracts the unit-lower-triangular factor `L` as a dense matrix.
    pub fn l(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if j < i {
                self.packed[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Extracts the upper-triangular factor `U` as a dense matrix.
    pub fn u(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.packed[(i, j)] } else { 0.0 })
    }

    /// Returns the permutation as a vector: row `i` of the factored system
    /// corresponds to row `perm[i]` of the original matrix.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward/backward substitution on the
        // packed factors (L has an implicit unit diagonal).
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 0..n {
            let row = self.packed.row(i);
            let mut s = x[i];
            for j in 0..i {
                s -= row[j] * x[j];
            }
            x[i] = s; // unit diagonal
        }
        for i in (0..n).rev() {
            let row = self.packed.row(i);
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= row[j] * x[j];
            }
            let d = row[i];
            if d.abs() < PIVOT_TOL {
                return Err(LinalgError::Singular {
                    op: "lu_solve",
                    pivot: i,
                });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (self.dim(), self.dim()),
                rhs: b.shape(),
            });
        }
        let bt = b.transpose();
        let mut xt = Matrix::zeros(b.cols(), self.dim());
        for c in 0..b.cols() {
            let x = self.solve(bt.row(c))?;
            xt.row_mut(c).copy_from_slice(&x);
        }
        Ok(xt.transpose())
    }

    /// Inverse via solves against the identity.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant `det(A) = sign(P) · Π u_kk`.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for k in 0..self.dim() {
            d *= self.packed[(k, k)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemv;
    use crate::gemm::gemm_naive;
    use crate::random::{random_diag_dominant, random_matrix, random_vector};
    use rand::prelude::*;

    #[test]
    fn reconstruction_pa_eq_lu() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_matrix(&mut rng, 18, 18);
        let lu = Lu::factor(&a).unwrap();
        let l = lu.l();
        let u = lu.u();
        let prod = gemm_naive(&l, &u).unwrap();
        // Build P·A explicitly from the permutation vector.
        let pa = Matrix::from_fn(18, 18, |i, j| a[(lu.permutation()[i], j)]);
        assert!(prod.approx_eq(&pa, 1e-8), "max diff {}", prod.try_sub(&pa).unwrap().max_abs());
    }

    #[test]
    fn solve_roundtrip() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = random_diag_dominant(&mut rng, 25);
        let x_true = random_vector(&mut rng, 25);
        let b = gemv(&a, &x_true).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-8);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_element() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let err = Lu::factor(&a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { op: "lu", .. }));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(Lu::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn blocked_bit_identical_to_reference_across_panels() {
        let mut rng = StdRng::seed_from_u64(35);
        for n in [1usize, 7, PANEL - 1, PANEL, PANEL + 1, 2 * PANEL + 3, 100] {
            let a = random_matrix(&mut rng, n, n);
            let (blocked, reference) = match (Lu::factor(&a), Lu::factor_reference(&a)) {
                (Ok(b), Ok(r)) => (b, r),
                (Err(b), Err(r)) => {
                    assert_eq!(format!("{b:?}"), format!("{r:?}"));
                    continue;
                }
                (b, r) => panic!("diverging results: {b:?} vs {r:?}"),
            };
            assert_eq!(blocked, reference, "n={n}");
        }
    }

    #[test]
    fn parallel_trailing_update_bit_identical_to_serial() {
        // Sizes chosen so the trailing submatrix spans several BLOCK row
        // bands (n − PANEL > 2·BLOCK) and also degenerate/singleton bands.
        let mut rng = StdRng::seed_from_u64(36);
        for n in [1usize, PANEL + 1, 100, 2 * crate::gemm::BLOCK + PANEL + 7] {
            let a = random_matrix(&mut rng, n, n);
            let serial = Lu::factor(&a).unwrap();
            for threads in [1usize, 2, 3, 0] {
                let par =
                    Lu::factor_parallel_with(&a, Parallelism::with_threads(threads)).unwrap();
                assert_eq!(par, serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() - 6.0).abs() < 1e-12);
        // Permutation matrix has determinant -1.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((Lu::factor(&p).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_matches_identity() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = random_diag_dominant(&mut rng, 10);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = gemm_naive(&a, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(10), 1e-8));
    }

    #[test]
    fn solve_matrix_matches_vector_solves() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = random_diag_dominant(&mut rng, 12);
        let b = random_matrix(&mut rng, 12, 3);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        for c in 0..3 {
            let xc = lu.solve(&b.col(c)).unwrap();
            for i in 0..12 {
                assert!((x[(i, c)] - xc[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_shape_errors() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }
}
