//! Dense linear algebra substrate for the relative-performance reproduction.
//!
//! The paper's workloads are built from TensorFlow 2.1 linear algebra; this
//! crate replaces that dependency with a self-contained, pure-Rust stack:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with checked and unchecked
//!   access, views, and elementwise helpers.
//! * [`gemm`] — matrix-matrix multiplication in four flavours (naive, blocked,
//!   packed, and thread-parallel), all bit-agreeing up to floating-point
//!   reassociation and property-tested against the naive reference.
//! * [`cholesky`], [`lu`], [`qr`], [`triangular`] — the factorizations needed
//!   to solve the paper's Regularized Least Squares (RLS) task.
//! * [`rls`] — the RLS solver `Z = (AᵀA + λI)⁻¹ AᵀB` (Procedure 6 of the
//!   paper) with both a normal-equations/Cholesky path and a QR path.
//! * [`sparse`] — the bandwidth-bound family: COO assembly, a [`CsrMatrix`]
//!   with SpMV and sparse triangular solves, and deterministic Jacobi /
//!   Conjugate-Gradient solvers, all pinned against the dense oracles.
//! * [`flops`] — exact floating-point-operation counts for every kernel,
//!   consumed by the simulator's energy model.
//!
//! All kernels are deterministic given their inputs; randomness only enters
//! through [`random`] which is fully seeded.

#![warn(missing_docs)]

pub mod blas;
pub mod cholesky;
pub mod condition;
pub mod eigen;
pub mod engine;
pub mod error;
pub mod flops;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod random;
pub mod rls;
pub mod sparse;
pub mod strassen;
pub mod svd;
pub mod triangular;

pub use engine::KernelEngine;
pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use sparse::{CooMatrix, CsrMatrix, IterSolve, SparseError};
pub use relperf_parallel::Parallelism;

/// Default tolerance used by tests and debug assertions when comparing
/// floating-point results of mathematically equivalent kernels.
pub const DEFAULT_TOL: f64 = 1e-9;

/// The shared fused multiply-add `a·b + acc` every kernel element update
/// in this crate goes through.
///
/// [`f64::mul_add`] rounds once, and that semantics is *exact* — the result
/// does not depend on whether the target lowers it to a hardware FMA
/// instruction or to the software fallback. Routing the naive references,
/// the packed microkernel, and the factorization inner loops through this
/// one function is what makes "blocked ≡ naive, bit for bit" hold on every
/// build. (The workspace `.cargo/config.toml` compiles with
/// `-C target-cpu=native`, so on FMA-capable hardware this is a single
/// instruction.)
#[inline(always)]
pub fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    a.mul_add(b, acc)
}

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser), the standard mixed criterion for
/// comparing results of reassociated floating-point computations.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(0.0, 1e-12, 1e-9));
    }
}
