//! Service-wide load metrics.
//!
//! Counters are plain relaxed atomics — incremented from admission paths
//! and from scheduler workers without any lock — and read out as one
//! [`ServiceStats`] value. The snapshot is not atomic *across* counters
//! (a reader racing a writer may see `requests` bumped before the matching
//! `rejections`), which is the usual metrics contract: monotone
//! per-counter, approximate in cross-section.
//!
//! Two counter families coexist:
//!
//! * **request-level** (`requests` / `rejections`) — every admission
//!   attempt, whether a `create_session`, a `restore_session`, or a
//!   submitted op.
//! * **op-level** (`ops_submitted` / `ops_admitted` / `ops_rejected` /
//!   `ops_executed`) — only ops presented to `submit` / `submit_all`.
//!   Once the service quiesces these obey two exact identities the
//!   overload tests pin down: `ops_submitted == ops_admitted +
//!   ops_rejected`, and `ops_admitted - ops_executed` is the scheduler
//!   **backlog** — the quantity the [`Overloaded`](crate::error::ServiceError::Overloaded)
//!   load-shedding watermark is measured against.

use std::sync::atomic::{AtomicU64, Ordering};

/// The live counters owned by the service.
#[derive(Debug, Default)]
pub(crate) struct StatCounters {
    pub requests: AtomicU64,
    pub rejections: AtomicU64,
    pub batches: AtomicU64,
    pub waves: AtomicU64,
    pub evictions: AtomicU64,
    pub ops_submitted: AtomicU64,
    pub ops_admitted: AtomicU64,
    pub ops_rejected: AtomicU64,
    pub ops_executed: AtomicU64,
    pub spills: AtomicU64,
    pub rehydrations: AtomicU64,
    pub shed: AtomicU64,
    pub journal_appends: AtomicU64,
    pub journal_syncs: AtomicU64,
    pub journal_compactions: AtomicU64,
    pub digests_emitted: AtomicU64,
    pub segments_shipped: AtomicU64,
    pub segments_acked: AtomicU64,
    pub recovery_replayed_ops: AtomicU64,
    pub recovery_torn_shards: AtomicU64,
    pub recovery_truncated_bytes: AtomicU64,
}

impl StatCounters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Admitted-but-unexecuted ops — the scheduler backlog the load
    /// shedder watches. Saturating: a racing reader may observe
    /// `ops_executed` ahead of `ops_admitted` for an instant.
    pub fn backlog(&self) -> u64 {
        self.ops_admitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.ops_executed.load(Ordering::Relaxed))
    }

    /// Records the one-shot post-recovery (or post-promotion) health
    /// gauges surfaced through [`ServiceStats`] and the wire `Status`
    /// response.
    pub fn record_recovery(&self, replayed_ops: u64, torn_shards: u64, truncated_bytes: u64) {
        self.recovery_replayed_ops.store(replayed_ops, Ordering::Relaxed);
        self.recovery_torn_shards.store(torn_shards, Ordering::Relaxed);
        self.recovery_truncated_bytes.store(truncated_bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ops_submitted: self.ops_submitted.load(Ordering::Relaxed),
            ops_admitted: self.ops_admitted.load(Ordering::Relaxed),
            ops_rejected: self.ops_rejected.load(Ordering::Relaxed),
            ops_executed: self.ops_executed.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            rehydrations: self.rehydrations.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_syncs: self.journal_syncs.load(Ordering::Relaxed),
            journal_compactions: self.journal_compactions.load(Ordering::Relaxed),
            digests_emitted: self.digests_emitted.load(Ordering::Relaxed),
            segments_shipped: self.segments_shipped.load(Ordering::Relaxed),
            segments_acked: self.segments_acked.load(Ordering::Relaxed),
            recovery_replayed_ops: self.recovery_replayed_ops.load(Ordering::Relaxed),
            recovery_torn_shards: self.recovery_torn_shards.load(Ordering::Relaxed),
            recovery_truncated_bytes: self.recovery_truncated_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of the service counters (see the [module
/// docs](self) for the consistency contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Admission attempts: every `create_session`, `restore_session`, and
    /// `submit` call, accepted or not.
    pub requests: u64,
    /// Requests rejected with a typed error (admission control or
    /// backpressure).
    pub rejections: u64,
    /// Scheduler batches drained by `run_batch` / `run_shard_batch`.
    pub batches: u64,
    /// `Score` ops executed across all sessions.
    pub waves: u64,
    /// Sessions dropped for good: evicted with spilling disabled, or
    /// pushed out of a full spill store.
    pub evictions: u64,
    /// Ops presented to `submit` / `submit_all`
    /// (`== ops_admitted + ops_rejected` once quiesced).
    pub ops_submitted: u64,
    /// Ops accepted into a shard queue.
    pub ops_admitted: u64,
    /// Ops turned away with a typed error (including shed ones).
    pub ops_rejected: u64,
    /// Ops answered by a scheduler batch (successfully or with a typed
    /// per-op error). `ops_admitted - ops_executed` is the live backlog.
    pub ops_executed: u64,
    /// Idle sessions spilled to snapshot bytes on eviction.
    pub spills: u64,
    /// Spilled sessions transparently rebuilt on a tenant's touch.
    pub rehydrations: u64,
    /// Ops rejected specifically by the backlog watermark
    /// ([`Overloaded`](crate::error::ServiceError::Overloaded)); a subset
    /// of `ops_rejected`.
    pub shed: u64,
    /// Journal records appended (one per create/restore and one per
    /// atomically admitted op group). Zero on an unjournaled service.
    pub journal_appends: u64,
    /// Durable group commits (`fsync` boundaries) across all shards.
    pub journal_syncs: u64,
    /// Checkpoints installed (journal truncations), manual or automatic.
    pub journal_compactions: u64,
    /// Divergence-detection [`Digest`](crate::journal::JournalRecord::Digest)
    /// records appended to quiesced shards.
    pub digests_emitted: u64,
    /// Replication segments cut and handed to a transport by the
    /// [`JournalShipper`](crate::replication::JournalShipper).
    pub segments_shipped: u64,
    /// Replication segments acknowledged by a follower's applied
    /// watermark.
    pub segments_acked: u64,
    /// Ops replayed from journals by the last
    /// [`recover`](crate::service::SessionService::recover) (or follower
    /// promotion) that produced this service. Zero on a clean boot.
    pub recovery_replayed_ops: u64,
    /// Shards whose journal had a torn tail at the last recovery.
    pub recovery_torn_shards: u64,
    /// Torn-tail bytes truncated at the last recovery.
    pub recovery_truncated_bytes: u64,
}

/// Post-crash / post-failover health, carried in the wire `Status`
/// response so operators can see what the last recovery did remotely.
///
/// The three gauges mirror the recovery fields of [`ServiceStats`]; they
/// are all zero for a service that booted clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryHealth {
    /// Ops replayed from journals by the last recovery or promotion.
    pub replayed_ops: u64,
    /// Shards whose journal had a torn tail.
    pub torn_shards: u64,
    /// Torn-tail bytes truncated.
    pub truncated_bytes: u64,
}

impl RecoveryHealth {
    /// Extracts the recovery gauges from a stats reading.
    pub fn from_stats(stats: &ServiceStats) -> Self {
        RecoveryHealth {
            replayed_ops: stats.recovery_replayed_ops,
            torn_shards: stats.recovery_torn_shards,
            truncated_bytes: stats.recovery_truncated_bytes,
        }
    }
}
