//! Calibration tests: the simulated platforms must reproduce the paper's
//! qualitative results (cluster structure, not absolute times).
//!
//! These are the guardrails for `relperf-sim::presets` — if a preset
//! constant changes, these tests tell you which paper artifact broke.

use rand::prelude::*;
use relperf_core::cluster::ClusterConfig;
use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
use relperf_workloads::experiment::{cluster_measurements, measure_all, Experiment};

fn comparator() -> BootstrapComparator {
    BootstrapComparator::with_config(
        9,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    )
}

/// Fig. 1b at N=500: AD significantly best, AA second, DD ≈ DA worst.
#[test]
fn fig1_cluster_structure_at_n500() {
    let e = Experiment::fig1();
    let mut rng = StdRng::seed_from_u64(1);
    let measured = measure_all(&e, 500, &mut rng);
    let label = |i: usize| measured[i].label.as_str();

    // Mean ordering first: AD < AA < DD < DA (paper Fig. 1b shapes).
    let mean_of = |l: &str| {
        measured
            .iter()
            .find(|m| m.label == l)
            .map(|m| m.sample.mean())
            .unwrap()
    };
    assert!(mean_of("AD") < mean_of("AA"));
    assert!(mean_of("AA") < mean_of("DD"));
    // DD and DA within 2.5% of each other.
    assert!((mean_of("DA") - mean_of("DD")).abs() / mean_of("DD") < 0.025);

    let table = cluster_measurements(
        &measured,
        &comparator(),
        ClusterConfig::with_repetitions(50),
        &mut rng,
    );
    let clustering = table.final_assignment();
    let rank_of = |l: &str| {
        (0..4)
            .find(|&i| label(i) == l)
            .map(|i| clustering.assignment(i).rank)
            .unwrap()
    };
    assert_eq!(rank_of("AD"), 1, "AD must be the sole top class");
    assert_eq!(rank_of("AA"), 2, "AA must be the second class");
    assert_eq!(
        rank_of("DD"),
        rank_of("DA"),
        "DD and DA must share a class (the paper's equivalent pair)"
    );
    assert!(rank_of("DD") > rank_of("AA"));
}

/// Table I at N=30: DDA best, DAA straddling C1/C2, DDD second, AAD/AAA at
/// the bottom, five-ish classes, and the ~1.05 end-to-end speed-up of DDA
/// over DDD.
#[test]
fn table1_cluster_structure_at_n30() {
    let e = Experiment::table1(10);
    // Whether DAA straddles C1/C2 depends on the concrete N=30 measurement
    // draw; this seed yields a genuinely borderline DAA sample (≈0.5/0.5,
    // the paper reports 0.6/0.4) under the workspace StdRng streams.
    let mut rng = StdRng::seed_from_u64(5);
    let measured = measure_all(&e, 30, &mut rng);
    let idx = |l: &str| measured.iter().position(|m| m.label == l).unwrap();

    // The paper's headline speed-up: mean(DDD)/mean(DDA) ≈ 1.05.
    let speedup = measured[idx("DDD")].sample.mean() / measured[idx("DDA")].sample.mean();
    assert!(
        (1.03..1.09).contains(&speedup),
        "DDA speed-up over DDD drifted: {speedup}"
    );

    let table = cluster_measurements(
        &measured,
        &comparator(),
        ClusterConfig::with_repetitions(100),
        &mut rng,
    );

    // DDA always lands in the best class.
    assert!(
        table.score(idx("DDA"), 1) > 0.95,
        "DDA must anchor C1, score {}",
        table.score(idx("DDA"), 1)
    );
    // DAA straddles C1 and C2 (paper: 0.6 / 0.4).
    let daa1 = table.score(idx("DAA"), 1);
    let daa2 = table.score(idx("DAA"), 2);
    assert!(daa1 > 0.05, "DAA must sometimes join C1 (got {daa1})");
    assert!(daa2 > 0.05, "DAA must sometimes fall to C2 (got {daa2})");

    let clustering = table.final_assignment();
    let rank = |l: &str| clustering.assignment(idx(l)).rank;

    // Final classes: DDA top; DDD strictly better than the L1-offloading
    // placements; AAD and AAA at the bottom.
    assert_eq!(rank("DDA"), 1);
    assert!(rank("DDD") < rank("ADA"));
    assert!(rank("DDD") < rank("ADD"));
    let worst = clustering.num_classes();
    assert!(
        rank("AAA") == worst || rank("AAD") == worst,
        "the bottom class must hold AAA or AAD"
    );
    assert!(rank("AAA") >= rank("ADA"));
    assert!(rank("AAD") >= rank("ADA"));
    // The paper reports five classes; allow a small band around that.
    assert!(
        (4..=6).contains(&clustering.num_classes()),
        "expected ~5 classes, got {}",
        clustering.num_classes()
    );
}

/// The decision-model inputs of Sec. IV: DDD does everything on the device
/// (zero operating cost), DAA offloads most FLOPs (the energy fallback),
/// DDA buys the speed-up with accelerator cost.
#[test]
fn table1_profiles_support_decision_models() {
    let e = Experiment::table1(10);
    let mut rng = StdRng::seed_from_u64(2);
    let measured = measure_all(&e, 30, &mut rng);
    let idx = |l: &str| measured.iter().position(|m| m.label == l).unwrap();

    let ddd = &measured[idx("DDD")].record;
    let daa = &measured[idx("DAA")].record;
    let dda = &measured[idx("DDA")].record;

    assert_eq!(ddd.operating_cost, 0.0);
    assert!(dda.operating_cost > 0.0);
    // DAA moves the bulk of the FLOPs off the device.
    assert!(daa.device_flops < ddd.device_flops / 10);
    assert!(daa.energy.device_j < ddd.energy.device_j);
}

/// Growing `n` must grow the DDA-over-DDD speed-up (paper: "when n becomes
/// larger, the speed up increases"). Below the crossover (~n=12 on this
/// platform) offloading L3 does not pay at all — the per-boundary context
/// switch still dominates the accumulated per-iteration gain.
#[test]
fn speedup_grows_with_n() {
    let mut last = 0.0;
    let mut final_speedup = 0.0;
    for n in [5usize, 20, 80] {
        let e = Experiment::table1(n);
        let ddd = e
            .platform
            .execute_noiseless(&e.tasks, &e.placements[0].1)
            .total_time_s;
        let dda_placement = &e
            .placements
            .iter()
            .find(|(l, _)| l == "DDA")
            .unwrap()
            .1;
        let dda = e
            .platform
            .execute_noiseless(&e.tasks, dda_placement)
            .total_time_s;
        let speedup = ddd / dda;
        assert!(
            speedup > last,
            "speed-up must grow with n: n={n} gave {speedup} after {last}"
        );
        last = speedup;
        final_speedup = speedup;
    }
    assert!(
        final_speedup > 1.04,
        "offloading L3 must clearly pay at n=80, got {final_speedup}"
    );
}
