//! Wire client and in-process duplex transport.
//!
//! [`WireClient`] drives the [`crate::wire`] protocol over any
//! `Read + Write` stream — a [`DuplexPipe`] end for in-process use, a
//! `UnixStream` for a socket server (see [`crate::wire::serve_unix`]).
//! Every method is a strict request/response round trip; service-side
//! rejections come back as typed
//! [`ClientError::Service`] values, so a remote caller
//! sheds load (`TenantBusy`, `QueueFull`, `Overloaded`) exactly like an
//! in-process one.
//!
//! The [`DuplexPipe`] is a pair of bounded-unbounded byte queues with
//! condvar wakeups — the smallest transport that exercises the real
//! streaming frame reader (partial reads, interleaved frames, clean
//! close) without touching the filesystem or network, which keeps the
//! fault-injection tests hermetic and deterministic.

use crate::error::ServiceError;
use crate::runtime::{RuntimeError, RuntimeHandle};
use crate::service::{OpResponse, SessionOp, SessionSpec, SessionStatus};
use crate::stats::{RecoveryHealth, ServiceStats};
use crate::wire::{
    self, decode_response, encode_request, read_frame, write_frame, Request, Response, WireError,
};
use relperf_measure::ScratchThreeWayComparator;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// ---------------------------------------------------------------------
// In-process duplex transport
// ---------------------------------------------------------------------

/// One direction of the pipe: a byte queue plus its wakeup.
struct Channel {
    state: Mutex<ChannelState>,
    ready: Condvar,
}

struct ChannelState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Channel {
            state: Mutex::new(ChannelState {
                buf: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().expect("pipe poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// One end of an in-process duplex byte stream (see [`duplex`]).
///
/// `Read` blocks until bytes arrive or the peer closes (then returns
/// `Ok(0)`, the standard EOF). `Write` never blocks (the buffer is
/// unbounded — wire frames are small and strictly request/response) and
/// fails with `BrokenPipe` after the peer is gone.
pub struct DuplexPipe {
    recv: Arc<Channel>,
    send: Arc<Channel>,
}

/// A connected pair of in-process stream ends: what one end writes, the
/// other reads, in order.
pub fn duplex() -> (DuplexPipe, DuplexPipe) {
    let a_to_b = Channel::new();
    let b_to_a = Channel::new();
    (
        DuplexPipe {
            recv: Arc::clone(&b_to_a),
            send: Arc::clone(&a_to_b),
        },
        DuplexPipe {
            recv: a_to_b,
            send: b_to_a,
        },
    )
}

impl Read for DuplexPipe {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.recv.state.lock().expect("pipe poisoned");
        while state.buf.is_empty() {
            if state.closed {
                return Ok(0);
            }
            state = self
                .recv
                .ready
                .wait(state)
                .expect("pipe poisoned");
        }
        let n = out.len().min(state.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }
}

impl Write for DuplexPipe {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut state = self.send.state.lock().expect("pipe poisoned");
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the pipe",
            ));
        }
        state.buf.extend(bytes);
        drop(state);
        self.send.ready.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for DuplexPipe {
    fn drop(&mut self) {
        // Closing either end unblocks both directions: our reader side so
        // the peer's writes fail fast, our writer side so the peer's
        // blocked read returns EOF.
        self.recv.close();
        self.send.close();
    }
}

impl fmt::Debug for DuplexPipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DuplexPipe").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The service rejected the request (admission control, backpressure,
    /// load shedding, bad spec …) — same typed vocabulary as in-process.
    Service(ServiceError),
    /// The runtime gave up waiting for responses.
    Wait(RuntimeError),
    /// Framing, codec, or transport failure.
    Wire(WireError),
    /// The server answered with a response type the request cannot
    /// produce — a protocol bug, not tenant input.
    Protocol(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Service(e) => write!(f, "service rejected the request: {e}"),
            ClientError::Wait(e) => write!(f, "wait failed: {e}"),
            ClientError::Wire(e) => write!(f, "wire failure: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A bounded, deterministic retry schedule for backpressure rejections
/// (see [`WireClient::submit_with_retry`]).
///
/// Only the three *transient* admission errors are retried —
/// [`TenantBusy`](ServiceError::TenantBusy),
/// [`QueueFull`](ServiceError::QueueFull), and
/// [`Overloaded`](ServiceError::Overloaded) — each of which guarantees
/// the op group was **not** admitted, so a resubmit can never duplicate
/// work. Everything else (bad specs, unknown sessions, wire faults, and
/// in particular [`ServiceError::Journal`], whose `Crashed`/`Io` cases
/// leave an ambiguous-commit window) aborts immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (the first try included). Treated as at
    /// least 1.
    pub max_attempts: usize,
    /// Sleep before retry *k* is `backoff_schedule[k-1]`, clamped to the
    /// last entry once the schedule runs out. Empty means no sleeping —
    /// useful against an in-process sync-mode server, where the
    /// between-attempt [`collect_ready`](WireClient::collect_ready) drain
    /// is what makes progress.
    pub backoff_schedule: Vec<Duration>,
}

impl Default for RetryPolicy {
    /// Four attempts with a doubling 1 ms / 2 ms / 4 ms backoff.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_schedule: vec![
                Duration::from_millis(1),
                Duration::from_millis(2),
                Duration::from_millis(4),
            ],
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer-style mixer — one pass
/// turns `(seed ^ attempt)` into well-distributed jitter bits with no
/// RNG state to carry.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// `attempts` tries with no sleeping between them — fully
    /// deterministic, the right shape for tests and sync-mode runtimes.
    pub fn immediate(attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: attempts,
            backoff_schedule: Vec::new(),
        }
    }

    /// Seeded exponential backoff with bounded jitter: the sleep before
    /// retry *k* is `min(cap, base · 2^(k-1))` scaled by a factor in
    /// `[0.75, 1.25)` drawn from a SplitMix64 mix of `seed` and `k`.
    ///
    /// The whole schedule is **precomputed here**, so two clients built
    /// with the same arguments sleep the exact same sequence — retry
    /// behavior stays reproducible (and pinnable by test) while distinct
    /// seeds de-synchronize a thundering herd. No time source and no
    /// shared RNG is consulted, preserving the exactly-once admission
    /// argument of [`submit_with_retry`](WireClient::submit_with_retry):
    /// jitter changes *when* a retry happens, never *whether* an op
    /// group could be admitted twice.
    pub fn exponential(max_attempts: usize, base: Duration, cap: Duration, seed: u64) -> Self {
        let retries = max_attempts.saturating_sub(1);
        let schedule = (1..=retries as u64)
            .map(|k| {
                let exp = base.saturating_mul(1u32 << (k - 1).min(31) as u32).min(cap);
                // Top 53 bits → uniform in [0, 1): full f64 precision.
                let unit = (splitmix64(seed ^ k) >> 11) as f64 / (1u64 << 53) as f64;
                let scaled = exp.as_nanos() as f64 * (0.75 + 0.5 * unit);
                Duration::from_nanos(scaled as u64)
            })
            .collect();
        RetryPolicy {
            max_attempts,
            backoff_schedule: schedule,
        }
    }

    /// The sleep before retry number `retry` (1-based); `None` when the
    /// schedule is empty.
    pub fn backoff(&self, retry: usize) -> Option<Duration> {
        let last = self.backoff_schedule.last()?;
        Some(
            *self
                .backoff_schedule
                .get(retry.saturating_sub(1))
                .unwrap_or(last),
        )
    }
}

/// Client-side counters accumulated by
/// [`submit_with_retry`](WireClient::submit_with_retry) over the client's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Submission attempts sent over the wire (first tries included).
    pub attempts: u64,
    /// Attempts that were retries of a backpressure rejection.
    pub retries: u64,
    /// Calls that exhausted their policy and surfaced the final error.
    pub exhausted: u64,
    /// Responses drained opportunistically between attempts.
    pub drained_responses: u64,
}

/// What a successful [`submit_with_retry`](WireClient::submit_with_retry)
/// returned.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// Admission tickets of the accepted op group, in op order.
    pub seqs: Vec<u64>,
    /// Attempts this call used (1 = accepted first try).
    pub attempts: usize,
    /// Responses drained between attempts — already delivered to this
    /// call, so a later `await_responses` will not see them again.
    pub drained: Vec<OpResponse>,
}

/// A synchronous wire-protocol client over any duplex byte stream.
#[derive(Debug)]
pub struct WireClient<S> {
    stream: S,
    retry_stats: RetryStats,
}

impl<S: Read + Write> WireClient<S> {
    /// Wraps an already-connected duplex stream (e.g. a `UnixStream`).
    pub fn new(stream: S) -> Self {
        WireClient {
            stream,
            retry_stats: RetryStats::default(),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream, wire::MAX_FRAME_PAYLOAD)?;
        Ok(decode_response(&payload)?)
    }

    /// Opens a fresh session on the served runtime.
    pub fn create_session(
        &mut self,
        tenant: u64,
        session: u64,
        spec: SessionSpec,
    ) -> Result<(), ClientError> {
        match self.call(&Request::CreateSession {
            tenant,
            session,
            spec,
        })? {
            Response::Created => Ok(()),
            Response::Error { error } => Err(ClientError::Service(error)),
            _ => Err(ClientError::Protocol("unexpected response to CreateSession")),
        }
    }

    /// Rebuilds a session from snapshot bytes.
    pub fn restore_session(
        &mut self,
        tenant: u64,
        session: u64,
        bytes: Vec<u8>,
    ) -> Result<(), ClientError> {
        match self.call(&Request::RestoreSession {
            tenant,
            session,
            bytes,
        })? {
            Response::Restored => Ok(()),
            Response::Error { error } => Err(ClientError::Service(error)),
            _ => Err(ClientError::Protocol("unexpected response to RestoreSession")),
        }
    }

    /// Atomically submits an op group, returning the admission tickets.
    /// Backpressure and shedding come back as
    /// [`ClientError::Service`] with the same typed errors
    /// (`TenantBusy`, `QueueFull`, `Overloaded`) an in-process caller
    /// sees.
    pub fn submit(
        &mut self,
        tenant: u64,
        session: u64,
        ops: Vec<SessionOp>,
    ) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::Submit {
            tenant,
            session,
            ops,
        })? {
            Response::Submitted { seqs } => Ok(seqs),
            Response::Error { error } => Err(ClientError::Service(error)),
            _ => Err(ClientError::Protocol("unexpected response to Submit")),
        }
    }

    /// [`submit`](WireClient::submit) with bounded, deterministic retry of
    /// the transient backpressure rejections (`TenantBusy`, `QueueFull`,
    /// `Overloaded`).
    ///
    /// Between attempts the client drains
    /// [`collect_ready`](WireClient::collect_ready) — which both frees
    /// tenant in-flight budget and, against a sync-mode runtime, *is* the
    /// scheduling step that makes room — then sleeps the policy's backoff.
    /// Each retried error guarantees the group was not admitted, so no op
    /// is ever submitted twice; non-transient errors (including the
    /// ambiguous [`ServiceError::Journal`] cases) abort on first sight.
    /// Progress is tallied in [`retry_stats`](WireClient::retry_stats).
    pub fn submit_with_retry(
        &mut self,
        tenant: u64,
        session: u64,
        ops: Vec<SessionOp>,
        policy: &RetryPolicy,
    ) -> Result<SubmitOutcome, ClientError> {
        let max_attempts = policy.max_attempts.max(1);
        let mut drained = Vec::new();
        for attempt in 1..=max_attempts {
            self.retry_stats.attempts += 1;
            match self.submit(tenant, session, ops.clone()) {
                Ok(seqs) => {
                    return Ok(SubmitOutcome {
                        seqs,
                        attempts: attempt,
                        drained,
                    })
                }
                Err(ClientError::Service(
                    e @ (ServiceError::TenantBusy { .. }
                    | ServiceError::QueueFull { .. }
                    | ServiceError::Overloaded { .. }),
                )) => {
                    if attempt == max_attempts {
                        self.retry_stats.exhausted += 1;
                        return Err(ClientError::Service(e));
                    }
                    self.retry_stats.retries += 1;
                    let ready = self.collect_ready(tenant)?;
                    self.retry_stats.drained_responses += ready.len() as u64;
                    drained.extend(ready);
                    if let Some(pause) = policy.backoff(attempt) {
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    /// The client-side retry counters accumulated so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Blocks until the named tickets have responses, then returns them
    /// sorted by seq.
    pub fn await_responses(
        &mut self,
        tenant: u64,
        seqs: &[u64],
        timeout: Duration,
    ) -> Result<Vec<OpResponse>, ClientError> {
        match self.call(&Request::Await {
            tenant,
            seqs: seqs.to_vec(),
            timeout_ms: timeout.as_millis().min(u64::MAX as u128) as u64,
        })? {
            Response::Responses { responses } => Ok(responses),
            Response::WaitError { error } => Err(ClientError::Wait(error)),
            Response::Error { error } => Err(ClientError::Service(error)),
            _ => Err(ClientError::Protocol("unexpected response to Await")),
        }
    }

    /// Drains whatever responses are already delivered for the tenant.
    pub fn collect_ready(&mut self, tenant: u64) -> Result<Vec<OpResponse>, ClientError> {
        match self.call(&Request::Collect { tenant })? {
            Response::Responses { responses } => Ok(responses),
            _ => Err(ClientError::Protocol("unexpected response to Collect")),
        }
    }

    /// Reads one session's status summary (`None`: not hosted, not
    /// spilled).
    pub fn session_status(
        &mut self,
        tenant: u64,
        session: u64,
    ) -> Result<Option<SessionStatus>, ClientError> {
        Ok(self.status_with_health(tenant, session)?.0)
    }

    /// [`session_status`](WireClient::session_status) plus the service's
    /// recovery health gauges — what the last crash recovery or failover
    /// promotion replayed (all zero on a clean boot). The pair is what a
    /// reconciling client wants after a failover: *whether* its session
    /// survived, and *whether* it is talking to a promoted service.
    pub fn status_with_health(
        &mut self,
        tenant: u64,
        session: u64,
    ) -> Result<(Option<SessionStatus>, RecoveryHealth), ClientError> {
        match self.call(&Request::Status { tenant, session })? {
            Response::Status { status, recovery } => Ok((status, recovery)),
            _ => Err(ClientError::Protocol("unexpected response to Status")),
        }
    }

    /// Delivers one replication `SHIP` envelope to a follower served by
    /// [`serve_follower`](crate::wire::serve_follower), returning its
    /// applied watermark. Replication rejections come back typed
    /// ([`ServiceError::Replication`]).
    pub fn ship(&mut self, envelope: Vec<u8>) -> Result<u64, ClientError> {
        match self.call(&Request::Ship { envelope })? {
            Response::ShipAck { watermark, .. } => Ok(watermark),
            Response::Error { error } => Err(ClientError::Service(error)),
            _ => Err(ClientError::Protocol("unexpected response to Ship")),
        }
    }

    /// Reads the service-wide counters.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            _ => Err(ClientError::Protocol("unexpected response to Stats")),
        }
    }

    /// Closes the connection cleanly (the server acknowledges and hangs
    /// up).
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Goodbye)? {
            Response::Goodbye => Ok(()),
            _ => Err(ClientError::Protocol("unexpected response to Goodbye")),
        }
    }
}

impl WireClient<DuplexPipe> {
    /// Spawns an in-process server thread over a [`duplex`] pipe and
    /// returns the connected client plus the server's join handle (which
    /// resolves once the client says [`goodbye`](WireClient::goodbye) or
    /// drops).
    pub fn connect_in_proc<C>(
        handle: RuntimeHandle<C>,
    ) -> (Self, JoinHandle<Result<(), WireError>>)
    where
        C: ScratchThreeWayComparator + Send + Sync + 'static,
    {
        let (client_end, mut server_end) = duplex();
        let server = std::thread::spawn(move || wire::serve_connection(&handle, &mut server_end));
        (WireClient::new(client_end), server)
    }
}
