//! Error types for the linear algebra substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by linear algebra kernels.
///
/// The kernels validate their inputs eagerly so that shape bugs surface at
/// the call site rather than as out-of-bounds panics deep inside a blocked
/// loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name, e.g. `"gemm"`.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation requiring a square matrix received a rectangular one.
    NotSquare {
        /// Human-readable operation name.
        op: &'static str,
        /// Offending shape.
        shape: (usize, usize),
    },
    /// A factorization failed because the matrix is singular (or, for
    /// Cholesky, not positive definite) at the given pivot index.
    Singular {
        /// Human-readable operation name.
        op: &'static str,
        /// Pivot index at which the breakdown was detected.
        pivot: usize,
    },
    /// A dimension argument was zero where a positive size is required.
    EmptyDimension {
        /// Human-readable operation name.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: shape mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: expected square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { op, pivot } => {
                write!(f, "{op}: singular (or not positive definite) at pivot {pivot}")
            }
            LinalgError::EmptyDimension { op } => {
                write!(f, "{op}: dimension must be positive")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "gemm: shape mismatch 2x3 vs 4x5");
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare {
            op: "cholesky",
            shape: (2, 3),
        };
        assert_eq!(e.to_string(), "cholesky: expected square matrix, got 2x3");
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { op: "lu", pivot: 1 };
        assert_eq!(e.to_string(), "lu: singular (or not positive definite) at pivot 1");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::EmptyDimension { op: "qr" });
    }
}
