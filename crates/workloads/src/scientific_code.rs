//! The Sec. IV workload (Procedure 5): a scientific code calling three
//! `MathTask`s of sizes 50, 75, 300 — every task computes a penalty that
//! seeds the next, so the tasks are strictly sequential. With each task
//! placeable on `D` or `A` there are 8 equivalent algorithms (Table I).

use crate::mathtask::simulated_task;
use rand::Rng;
use relperf_linalg::KernelEngine;
use relperf_sim::{enumerate_placements, placement_label, Loc, Task};

/// Matrix sizes of the three `MathTask`s (paper Procedure 5).
pub const SIZES: [usize; 3] = [50, 75, 300];

/// Scaled-up task sizes for the blocked kernel engine: with the packed
/// microkernel under the RLS solver, the same seeded experiments reach
/// `n = 512` on real hardware in the time the naive kernels needed for
/// the paper's `n = 300`.
pub const LARGE_SIZES: [usize; 3] = [128, 256, 512];

/// Default loop length `n` of each `MathTask` (paper: `n = 10`).
pub const DEFAULT_ITERS: usize = 10;

/// The three tasks with `n` loop iterations each.
pub fn tasks(iters: usize) -> Vec<Task> {
    tasks_custom(&SIZES, iters)
}

/// The scaled-up [`LARGE_SIZES`] tasks with `n` loop iterations each.
pub fn tasks_large(iters: usize) -> Vec<Task> {
    tasks_custom(&LARGE_SIZES, iters)
}

/// Simulated task descriptions for arbitrary `MathTask` sizes — the FLOP
/// and byte counts come from the same shared formulas the real kernels
/// execute, whatever the size.
pub fn tasks_custom(sizes: &[usize], iters: usize) -> Vec<Task> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| simulated_task(&format!("L{}", i + 1), s, iters))
        .collect()
}

/// All 8 placements labelled in paper notation, `DDD` first, `AAA` last.
pub fn placements() -> Vec<(String, Vec<Loc>)> {
    enumerate_placements(3)
        .into_iter()
        .map(|p| (placement_label(&p), p))
        .collect()
}

/// Runs the *real* scientific code (Procedure 5) on this machine: three
/// chained `MathTask`s threading the penalty. Placement is ignored — on a
/// single machine there is only one device — but the signature mirrors the
/// simulated pipeline so examples can swap between the two.
pub fn run_real<R: Rng + ?Sized>(
    rng: &mut R,
    iters: usize,
) -> Result<f64, relperf_linalg::LinalgError> {
    run_real_custom(rng, &SIZES, iters)
}

/// [`run_real`] with caller-chosen task sizes (smaller instances for tests
/// and demos, [`LARGE_SIZES`] for the scaled-up campaign).
pub fn run_real_custom<R: Rng + ?Sized>(
    rng: &mut R,
    sizes: &[usize],
    iters: usize,
) -> Result<f64, relperf_linalg::LinalgError> {
    run_real_custom_with(rng, sizes, iters, KernelEngine::default())
}

/// [`run_real_custom`] on an explicit [`KernelEngine`]. The returned
/// penalty is bit-identical across engines (see
/// [`crate::mathtask::run_real_with`]); the engine only decides how fast
/// the measured workload runs.
pub fn run_real_custom_with<R: Rng + ?Sized>(
    rng: &mut R,
    sizes: &[usize],
    iters: usize,
    engine: KernelEngine,
) -> Result<f64, relperf_linalg::LinalgError> {
    let mut penalty = 0.0;
    for &s in sizes {
        penalty = crate::mathtask::run_real_with(rng, s, iters, penalty, engine)?;
    }
    Ok(penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn three_tasks_with_growing_flops() {
        let ts = tasks(10);
        assert_eq!(ts.len(), 3);
        assert!(ts[0].flops_per_iter < ts[1].flops_per_iter);
        assert!(ts[1].flops_per_iter < ts[2].flops_per_iter);
    }

    #[test]
    fn eight_placements_paper_notation() {
        let ps = placements();
        assert_eq!(ps.len(), 8);
        assert_eq!(ps[0].0, "DDD");
        assert_eq!(ps[7].0, "AAA");
        let labels: std::collections::HashSet<&str> =
            ps.iter().map(|(l, _)| l.as_str()).collect();
        for expect in ["DDD", "DDA", "DAD", "DAA", "ADD", "ADA", "AAD", "AAA"] {
            assert!(labels.contains(expect), "missing {expect}");
        }
    }

    #[test]
    fn iterations_parameter_respected() {
        for &n in &[1, 10, 50] {
            assert!(tasks(n).iter().all(|t| t.iterations == n as u64));
        }
    }

    #[test]
    fn run_real_small_instance() {
        // A scaled-down instance keeps the test fast; the full-size run is
        // exercised by the examples and benches in release mode.
        let p = run_real_custom(&mut StdRng::seed_from_u64(111), &[8, 10, 12], 2).unwrap();
        assert!(p.is_finite() && p >= 0.0);
    }
}
