//! Tasks, placements, and placement enumeration.

use std::fmt;

/// Where a task runs: the edge device `D` or the accelerator `A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// The edge device (paper notation `D`).
    Device,
    /// The accelerator (paper notation `A`).
    Accelerator,
}

impl Loc {
    /// Single-letter paper notation.
    pub fn letter(self) -> char {
        match self {
            Loc::Device => 'D',
            Loc::Accelerator => 'A',
        }
    }

    /// Parses `'D'`/`'A'` (case-insensitive).
    pub fn from_letter(c: char) -> Option<Loc> {
        match c.to_ascii_uppercase() {
            'D' => Some(Loc::Device),
            'A' => Some(Loc::Accelerator),
            _ => None,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// One loop of the scientific code (an `L_i` in the paper's Procedure 5): a
/// sequence of identical iterations, each with a fixed FLOP count and — when
/// placed on the accelerator — a per-iteration offload transfer.
///
/// The per-iteration transfer models the TensorFlow behaviour the paper
/// observes: the loop body generates fresh input matrices on the host, so an
/// accelerator placement ships them across the link every iteration ("the
/// overhead caused by the larger data-movement between CPU and GPU").
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name, e.g. `"L1"`.
    pub name: String,
    /// Number of loop iterations `n`.
    pub iterations: u64,
    /// FLOPs per iteration.
    pub flops_per_iter: u64,
    /// Host-to-device bytes per iteration when offloaded.
    pub offload_bytes_per_iter: u64,
    /// Device-to-host bytes per iteration when offloaded (the scalar
    /// penalty in the paper's RLS task).
    pub return_bytes_per_iter: u64,
    /// Peak working set of one iteration, bytes (drives memory-pressure
    /// throttling on the accelerator).
    pub working_set_bytes: u64,
    /// Bytes handed to the *next* task (the `penalty` scalar in Procedure
    /// 5); crosses the link when consecutive tasks run on different devices.
    pub handoff_bytes: u64,
}

impl Task {
    /// Total FLOPs of the task.
    pub fn total_flops(&self) -> u64 {
        self.iterations * self.flops_per_iter
    }

    /// Total bytes shipped to the accelerator if the task is offloaded.
    pub fn total_offload_bytes(&self) -> u64 {
        self.iterations * (self.offload_bytes_per_iter + self.return_bytes_per_iter)
    }

    /// A dense `n x n` matrix-product loop priced with the **same FLOP
    /// formula the real classical kernels execute**
    /// ([`relperf_linalg::flops::gemm`]) — the blocked engine performs
    /// exactly the naive loop's multiply-adds, so one count serves the
    /// simulator and the hardware measurement alike. Both input matrices
    /// cross the link per iteration when offloaded; the product returns.
    pub fn gemm_loop(name: &str, n: usize, iters: usize) -> Task {
        let bytes = relperf_linalg::flops::matrix_bytes(n, n);
        Task {
            name: name.to_string(),
            iterations: iters as u64,
            flops_per_iter: relperf_linalg::flops::gemm(n, n, n),
            offload_bytes_per_iter: 2 * bytes,
            return_bytes_per_iter: bytes,
            working_set_bytes: 3 * bytes,
            handoff_bytes: 8,
        }
    }

    /// A sparse matrix–vector product loop on an `n x n` CSR matrix with
    /// `nnz` stored entries — the simulator's entry into the
    /// **bandwidth-bound** regime.
    ///
    /// FLOPs come from [`relperf_linalg::flops::spmv`]; the working set is
    /// the kernel's *actual byte traffic*
    /// ([`relperf_linalg::flops::spmv_bytes`]: the CSR structure streams
    /// once per product, plus the dense vectors), so on a device with a
    /// working-set roofline the task is throttled by the bytes it moves,
    /// not by its (tiny) FLOP count. When offloaded, the CSR arrays and
    /// `x` cross the link each iteration and `y` returns.
    pub fn spmv_loop(name: &str, n: usize, nnz: usize, iters: usize) -> Task {
        let csr = relperf_linalg::flops::csr_bytes(n, nnz);
        let vec_bytes = 8 * n as u64;
        Task {
            name: name.to_string(),
            iterations: iters as u64,
            flops_per_iter: relperf_linalg::flops::spmv(nnz),
            offload_bytes_per_iter: csr + vec_bytes,
            return_bytes_per_iter: vec_bytes,
            working_set_bytes: relperf_linalg::flops::spmv_bytes(n, n, nnz),
            handoff_bytes: 8,
        }
    }

    /// A Conjugate-Gradient solve loop on an `n x n` SPD CSR system with
    /// `nnz` stored entries, running exactly `cg_iters` CG iterations per
    /// loop iteration — the simulated counterpart of
    /// [`relperf_linalg::sparse::CsrMatrix::cg_fixed`], whose fixed
    /// iteration count is what makes this price deterministic.
    ///
    /// FLOPs are `cg_iters ·` [`relperf_linalg::flops::cg_iter`]; the
    /// working set is the solve's cumulative byte traffic (`cg_iters ·`
    /// [`relperf_linalg::flops::cg_iter_bytes`]), the bandwidth-bound
    /// pricing described on [`Task::spmv_loop`]. When offloaded, the
    /// assembled system (CSR + right-hand side) crosses the link each
    /// iteration and the solution vector returns.
    pub fn cg_solve_loop(
        name: &str,
        n: usize,
        nnz: usize,
        cg_iters: usize,
        iters: usize,
    ) -> Task {
        let csr = relperf_linalg::flops::csr_bytes(n, nnz);
        let vec_bytes = 8 * n as u64;
        Task {
            name: name.to_string(),
            iterations: iters as u64,
            flops_per_iter: cg_iters as u64 * relperf_linalg::flops::cg_iter(n, nnz),
            offload_bytes_per_iter: csr + vec_bytes,
            return_bytes_per_iter: vec_bytes,
            working_set_bytes: cg_iters as u64 * relperf_linalg::flops::cg_iter_bytes(n, nnz),
            handoff_bytes: 8,
        }
    }

    /// The Strassen variant of [`Task::gemm_loop`]: mathematically the
    /// same product, different FLOP count
    /// ([`relperf_linalg::flops::strassen`]) and a padded working set —
    /// the classic "equivalent algorithms, different cost profile" pair
    /// the paper's methodology ranks.
    pub fn strassen_loop(name: &str, n: usize, iters: usize, cutoff: usize) -> Task {
        let bytes = relperf_linalg::flops::matrix_bytes(n, n);
        // Below the (power-of-two-rounded) cutoff the kernel runs the
        // plain blocked product on the unpadded operands; only the real
        // recursion materializes padded quadrant workspaces.
        let padded = if n <= cutoff.max(1).next_power_of_two() {
            n
        } else {
            n.next_power_of_two()
        };
        Task {
            name: name.to_string(),
            iterations: iters as u64,
            flops_per_iter: relperf_linalg::flops::strassen(n, cutoff),
            offload_bytes_per_iter: 2 * bytes,
            return_bytes_per_iter: bytes,
            working_set_bytes: 3 * relperf_linalg::flops::matrix_bytes(padded, padded),
            handoff_bytes: 8,
        }
    }
}

/// Human label of a placement vector in paper notation, e.g. `"DDA"`.
pub fn placement_label(placement: &[Loc]) -> String {
    placement.iter().map(|l| l.letter()).collect()
}

/// Parses a paper-notation label (e.g. `"DAD"`) into a placement vector.
/// Returns `None` on any character outside `{D, A}`.
pub fn parse_placement(label: &str) -> Option<Vec<Loc>> {
    label.chars().map(Loc::from_letter).collect()
}

/// Enumerates all `2^n` placements of `n` tasks in a stable order:
/// lexicographic with `D < A`, so `DD…D` comes first and `AA…A` last.
/// This is the paper's Fig. 1a (n=2, four algorithms) and Table I (n=3,
/// eight algorithms) enumeration.
pub fn enumerate_placements(n: usize) -> Vec<Vec<Loc>> {
    assert!(n < usize::BITS as usize, "placement count would overflow");
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0..(1u64 << n) {
        let mut p = Vec::with_capacity(n);
        for bit in (0..n).rev() {
            // Highest bit = first task, so the order is lexicographic.
            if mask & (1 << bit) == 0 {
                p.push(Loc::Device);
            } else {
                p.push(Loc::Accelerator);
            }
        }
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_letters_roundtrip() {
        assert_eq!(Loc::Device.letter(), 'D');
        assert_eq!(Loc::Accelerator.letter(), 'A');
        assert_eq!(Loc::from_letter('d'), Some(Loc::Device));
        assert_eq!(Loc::from_letter('A'), Some(Loc::Accelerator));
        assert_eq!(Loc::from_letter('x'), None);
        assert_eq!(Loc::Device.to_string(), "D");
    }

    #[test]
    fn task_totals() {
        let t = Task {
            name: "L1".into(),
            iterations: 10,
            flops_per_iter: 100,
            offload_bytes_per_iter: 7,
            return_bytes_per_iter: 3,
            working_set_bytes: 0,
            handoff_bytes: 8,
        };
        assert_eq!(t.total_flops(), 1_000);
        assert_eq!(t.total_offload_bytes(), 100);
    }

    #[test]
    fn gemm_and_strassen_loops_share_the_kernel_flop_model() {
        let classical = Task::gemm_loop("G", 512, 3);
        assert_eq!(classical.flops_per_iter, relperf_linalg::flops::gemm(512, 512, 512));
        assert_eq!(classical.total_flops(), 3 * classical.flops_per_iter);
        let strassen = Task::strassen_loop("S", 512, 3, 64);
        assert_eq!(
            strassen.flops_per_iter,
            relperf_linalg::flops::strassen(512, 64)
        );
        // Same transfers (same mathematical task), fewer FLOPs, more memory.
        assert_eq!(strassen.offload_bytes_per_iter, classical.offload_bytes_per_iter);
        assert!(strassen.flops_per_iter < classical.flops_per_iter);
        assert!(strassen.working_set_bytes >= classical.working_set_bytes);
    }

    #[test]
    fn sparse_loops_are_priced_by_traffic_not_flops() {
        use relperf_linalg::flops;
        let (n, nnz) = (2_000, 18_000);
        let spmv = Task::spmv_loop("SpMV", n, nnz, 4);
        assert_eq!(spmv.flops_per_iter, flops::spmv(nnz));
        assert_eq!(spmv.working_set_bytes, flops::spmv_bytes(n, n, nnz));
        // The bandwidth-bound signature: well below 1 FLOP per working-set
        // byte, where the dense gemm loop sits far above it.
        assert!(spmv.flops_per_iter < spmv.working_set_bytes);
        let dense = Task::gemm_loop("G", 300, 4);
        assert!(dense.flops_per_iter > dense.working_set_bytes);

        let cg = Task::cg_solve_loop("CG", n, nnz, 50, 4);
        assert_eq!(cg.flops_per_iter, 50 * flops::cg_iter(n, nnz));
        assert_eq!(cg.working_set_bytes, 50 * flops::cg_iter_bytes(n, nnz));
        // Offload ships the assembled system + rhs; the solution returns.
        assert_eq!(
            cg.offload_bytes_per_iter,
            flops::csr_bytes(n, nnz) + 8 * n as u64
        );
        assert_eq!(cg.return_bytes_per_iter, 8 * n as u64);
    }

    #[test]
    fn labels_roundtrip() {
        let p = vec![Loc::Device, Loc::Accelerator, Loc::Device];
        assert_eq!(placement_label(&p), "DAD");
        assert_eq!(parse_placement("DAD"), Some(p));
        assert_eq!(parse_placement("DXD"), None);
    }

    #[test]
    fn enumeration_count_and_order() {
        let all = enumerate_placements(3);
        assert_eq!(all.len(), 8);
        let labels: Vec<String> = all.iter().map(|p| placement_label(p)).collect();
        assert_eq!(
            labels,
            vec!["DDD", "DDA", "DAD", "DAA", "ADD", "ADA", "AAD", "AAA"]
        );
    }

    #[test]
    fn enumeration_two_tasks_matches_fig1a() {
        let labels: Vec<String> = enumerate_placements(2)
            .iter()
            .map(|p| placement_label(p))
            .collect();
        assert_eq!(labels, vec!["DD", "DA", "AD", "AA"]);
    }

    #[test]
    fn enumeration_zero_tasks() {
        let all = enumerate_placements(0);
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn all_placements_unique() {
        let all = enumerate_placements(4);
        let set: std::collections::HashSet<String> =
            all.iter().map(|p| placement_label(p)).collect();
        assert_eq!(set.len(), 16);
    }
}
