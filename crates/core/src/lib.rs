//! Relative performance analysis — the paper's primary contribution.
//!
//! Given `p` mathematically equivalent algorithms and a three-way comparator
//! over their measurement distributions (`relperf-measure`), this crate
//!
//! 1. sorts the algorithms with a **three-way bubble sort** whose rank
//!    update rules merge equivalent algorithms into the same performance
//!    class ([`sort`](mod@sort), Procedures 1–3 of the paper),
//! 2. repeats the clustering over shuffled inputs to compute **relative
//!    scores** — the confidence of each algorithm's membership in each
//!    class ([`cluster`], Procedure 4),
//! 3. applies **decision models** that pick an algorithm from the clusters
//!    under additional criteria such as operating cost or an energy budget
//!    ([`decision`], Sec. IV), and
//! 4. renders the tables and figures of the paper from those results
//!    ([`report`]).
//!
//! The clustering engine has two entry points: the legacy, strictly serial
//! [`relative_scores`] (one RNG threaded through all repetitions) and the
//! production [`relative_scores_seeded`] / [`relative_scores_seeded_with`]
//! (per-repetition seed streams, per-worker [`cache::ComparisonCache`] and
//! scratch arenas, and work fanned out across threads via
//! [`cluster::Parallelism`] — bit-identical for any thread count and
//! either [`cluster::PairSchedule`]).
//!
//! On top of the batch engine, [`session::ClusterSession`] streams the
//! same computation: measurements arrive in waves, every repetition's
//! comparison cache stays warm across waves (only pairs touching updated
//! samples are invalidated), and a [`session::ConvergenceCriterion`]
//! answers "have we measured enough?" — the adaptive-stopping layer the
//! batch entry points are thin one-wave wrappers over.

#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod decision;
pub mod predict;
pub mod report;
pub mod search;
pub mod session;
pub mod similarity;
pub mod sort;
pub mod triplet;

pub use cache::ComparisonCache;
pub use cluster::{
    relative_scores, relative_scores_seeded, relative_scores_seeded_with, ClusterConfig,
    Clustering, PairSchedule, Parallelism, ScoreTable,
};
pub use session::{ClusterSession, ConvergenceCriterion, CriterionError, SessionState};
pub use relperf_measure::Outcome;
pub use sort::{sort, sort_with_trace, SortState, SortStep};
