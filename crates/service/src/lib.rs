//! Multi-tenant hosted session service for the measure → compare → cluster
//! pipeline.
//!
//! Everything below this crate is a single-caller library: one
//! [`ClusterSession`](relperf_core::session::ClusterSession), one driver.
//! This crate turns those sessions into **first-class hosted objects** so
//! thousands of concurrent clustering campaigns — many tenants, many
//! sessions each — can share one process, one comparator, and one
//! scheduler, with admission control, load metrics, and durability:
//!
//! * [`service`] — the [`SessionService`]: a
//!   **sharded registry** (fixed array of mutex-guarded shards, lock per
//!   shard, capacity-bounded with **snapshot-on-evict**: the LRU idle
//!   session spills to its own codec bytes and rehydrates transparently
//!   on the next touch) plus a **deterministic batch scheduler** that
//!   drains queued `Push` / `Extend` / `Score` / `Snapshot` / `Close`
//!   ops in `(tenant, seq)` order and fans independent sessions' score
//!   waves across worker threads. For any request interleaving, shard
//!   count, and thread count the served results are **bit-identical** to
//!   driving each session directly.
//! * [`runtime`] — the pipelined front half: [`ServiceRuntime`] spawns
//!   background scheduler threads that drain disjoint shard partitions
//!   on a bounded cadence (slow tenants stop convoying fast ones) and
//!   route responses into per-tenant mailboxes;
//!   `scheduler_threads: 0` is a fully synchronous, deterministic
//!   drive-on-drain mode.
//! * [`wire`] + [`client`] — a length-prefixed, checksummed binary wire
//!   protocol (same LE/FNV dialect as the snapshot codec) with a
//!   [`WireClient`] over in-process duplex pipes or unix sockets;
//!   decoding is total (fuzzed byte-by-byte) and admission rejections
//!   travel as typed wire errors.
//! * [`error`] — typed admission/backpressure/shedding errors: the
//!   service rejects, it never panics on tenant input and never blocks a
//!   caller.
//! * [`stats`] — atomic counters (request-, op-, and lifecycle-level:
//!   spills, rehydrations, shed load) read as one [`ServiceStats`],
//!   with quiesced-identity guarantees the overload tests pin down.
//! * [`snapshot`] — a hand-rolled, versioned, checksummed binary
//!   checkpoint format (no serde — offline constraint): samples,
//!   convergence state, score table, and carried measurement RNG states. A
//!   restored session continues **wave-for-wave identically** to one that
//!   never stopped.
//! * [`journal`] — a durable, append-only **per-shard op journal** in the
//!   same LE/FNV framing: every admitted op group is journaled before it
//!   is enqueued, periodic checkpoints truncate the log, and
//!   [`SessionService::recover`] rebuilds every shard as snapshot +
//!   replay — torn final records are cleanly truncated, mid-journal
//!   corruption is a typed [`RecoveryError`], and recovered sessions
//!   continue **bit-identically** to an uninterrupted run (proven by an
//!   exhaustive crash-point fault-injection sweep in
//!   `tests/recovery.rs`).
//! * [`replication`] — journal-shipping replication: a
//!   [`JournalShipper`] taps the leader's durable record stream and
//!   ships checksummed, sequenced `SHIP` segments to a [`Follower`]
//!   that replays them into a warm standby and acks its applied
//!   watermark; periodic divergence digests catch any state drift as a
//!   typed [`ReplicaState::Diverged`], and
//!   [`Follower::promote`] turns the standby into a serving leader
//!   after a failover — proven bit-identical under a partition
//!   fault-injection sweep (drop / duplicate / reorder / truncate /
//!   bit-flip) in `tests/replication.rs`.
//! * [`campaign`] — adaptive measurement campaigns
//!   ([`ServiceCampaign`]) driven through the
//!   service instead of a private session, checkpointable mid-flight.
//!
//! # Quickstart
//!
//! ```
//! use relperf_service::prelude::*;
//! use relperf_measure::compare::MedianComparator;
//!
//! let service = SessionService::new(
//!     MedianComparator::new(0.05),
//!     8,                        // registry shards
//!     Parallelism::auto(),      // scheduler fan-out
//!     ServiceLimits::default(),
//! );
//! // Tenant 7 opens session 1 over two algorithms.
//! service.create_session(7, 1, SessionSpec::new(2, 42)).unwrap();
//! service.submit(7, 1, SessionOp::Extend { alg: 0, values: vec![1.0, 1.1, 0.9] }).unwrap();
//! service.submit(7, 1, SessionOp::Extend { alg: 1, values: vec![2.0, 2.1, 1.9] }).unwrap();
//! let seq = service.submit(7, 1, SessionOp::Score).unwrap();
//! let responses = service.run_batch();
//! let scored = responses.iter().find(|r| r.seq == seq).unwrap();
//! let Ok(OpOutcome::Scored(wave)) = &scored.result else { panic!() };
//! assert_eq!(wave.clustering.num_classes(), 2);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod client;
pub mod error;
pub mod journal;
pub mod replication;
pub mod runtime;
pub mod service;
pub mod snapshot;
pub mod stats;
pub mod wire;

pub use campaign::ServiceCampaign;
pub use client::{ClientError, RetryPolicy, RetryStats, SubmitOutcome, WireClient};
pub use error::{RecoveryError, ServiceError};
pub use journal::{
    CrashPoint, FileJournalStore, JournalConfig, JournalError, JournalIoError, JournalRecord,
    JournalStore, MemJournalStore, StoredShard, CRASH_POINTS,
};
pub use replication::{
    Follower, InProcTransport, JournalShipper, PromotionReport, PumpReport, ReplicaState,
    ReplicationError, SegmentTransport, ShipperConfig, ShipSegment,
};
pub use runtime::{RuntimeConfig, RuntimeError, RuntimeHandle, ServiceRuntime};
pub use service::{
    OpOutcome, OpResponse, RecoveryReport, SessionKey, SessionOp, SessionService, SessionSpec,
    SessionStatus, ServiceLimits, SharedComparator, WaveOutcome,
};
pub use snapshot::{SessionSnapshot, SnapshotError};
pub use stats::{RecoveryHealth, ServiceStats};
pub use wire::WireError;

/// The commonly used service surface, re-exported flat.
pub mod prelude {
    pub use crate::campaign::ServiceCampaign;
    pub use crate::client::{ClientError, RetryPolicy, RetryStats, SubmitOutcome, WireClient};
    pub use crate::error::{RecoveryError, ServiceError};
    pub use crate::journal::{
        CrashPoint, FileJournalStore, JournalConfig, JournalError, JournalIoError, JournalRecord,
        JournalStore, MemJournalStore, StoredShard, CRASH_POINTS,
    };
    pub use crate::replication::{
        Follower, InProcTransport, JournalShipper, PromotionReport, PumpReport, ReplicaState,
        ReplicationError, SegmentTransport, ShipperConfig, ShipSegment,
    };
    pub use crate::runtime::{RuntimeConfig, RuntimeError, RuntimeHandle, ServiceRuntime};
    pub use crate::service::{
        OpOutcome, OpResponse, RecoveryReport, SessionKey, SessionOp, SessionService, SessionSpec,
        SessionStatus, ServiceLimits, WaveOutcome,
    };
    pub use crate::snapshot::{SessionSnapshot, SnapshotError};
    pub use crate::stats::{RecoveryHealth, ServiceStats};
    pub use crate::wire::WireError;
    pub use relperf_core::cluster::{ClusterConfig, Parallelism};
    pub use relperf_core::session::ConvergenceCriterion;
}
