//! Memoization of pairwise three-way comparisons.
//!
//! One shuffled repetition of Procedure 4 runs a full bubble sort, which
//! may compare the same algorithm pair several times (a pair can become
//! adjacent again after swaps in later passes). The paper's semantics only
//! require a fresh stochastic comparison per *repetition* — within one
//! repetition, re-asking the comparator about the same pair spends a full
//! bootstrap (hundreds of resample-and-sort rounds) to re-answer a
//! question it already answered. [`ComparisonCache`] memoizes the outcome
//! per unordered pair for the duration of one repetition, enforcing
//! antisymmetry (`cmp(b, a) == cmp(a, b).invert()`) as a side effect.
//!
//! The cache is also what makes the parallel clustering deterministic: at
//! most one comparator call happens per (repetition, pair), always with
//! the pair in canonical (low, high) order, so the comparator can be
//! addressed by a pure per-pair stream id (see
//! `relperf_measure::SeededThreeWayComparator`) and the result cannot
//! depend on scheduling.

use relperf_measure::Outcome;

/// Per-repetition memo of pairwise comparison outcomes over `p` algorithms.
///
/// # Examples
///
/// ```
/// use relperf_core::cache::ComparisonCache;
/// use relperf_core::Outcome;
///
/// let mut cache = ComparisonCache::new(3);
/// let mut calls = 0;
/// let mut cmp = |a: usize, b: usize| { calls += 1; if a < b { Outcome::Better } else { Outcome::Worse } };
///
/// assert_eq!(cache.get_or_compute(0, 1, &mut cmp), Outcome::Better);
/// // The flipped query is answered from the cache, inverted.
/// assert_eq!(cache.get_or_compute(1, 0, &mut cmp), Outcome::Worse);
/// assert_eq!(calls, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ComparisonCache {
    p: usize,
    /// Outcome of `(lo, hi)` with `lo < hi`, keyed `lo * p + hi`.
    slots: Vec<Option<Outcome>>,
    hits: usize,
    misses: usize,
}

impl ComparisonCache {
    /// An empty cache for `p` algorithms.
    pub fn new(p: usize) -> Self {
        ComparisonCache {
            p,
            slots: vec![None; p * p],
            hits: 0,
            misses: 0,
        }
    }

    /// Forgets all cached outcomes while keeping the allocation and the
    /// hit/miss tallies — so one cache serves many clustering repetitions
    /// in turn. This is how the parallel engine uses it: each worker owns
    /// one cache as part of its per-worker state
    /// (`relative_scores_seeded_with`) and resets it between the
    /// repetitions it runs; a memo is never shared *across* workers, which
    /// is what keeps concurrent repetitions independent.
    pub fn reset(&mut self) {
        self.slots.fill(None);
    }

    /// The outcome of comparing `a` against `b`, computing it with
    /// `cmp(lo, hi)` (canonical order) on a miss. Queries with `a > b`
    /// return the inverted cached outcome.
    ///
    /// # Panics
    /// Panics when `a == b` or either index is out of range.
    pub fn get_or_compute(
        &mut self,
        a: usize,
        b: usize,
        cmp: &mut impl FnMut(usize, usize) -> Outcome,
    ) -> Outcome {
        assert!(a != b, "an algorithm is not compared against itself");
        assert!(a < self.p && b < self.p, "algorithm index out of range");
        let (lo, hi, flipped) = if a < b { (a, b, false) } else { (b, a, true) };
        let slot = lo * self.p + hi;
        let outcome = match self.slots[slot] {
            Some(outcome) => {
                self.hits += 1;
                outcome
            }
            None => {
                self.misses += 1;
                let outcome = cmp(lo, hi);
                self.slots[slot] = Some(outcome);
                outcome
            }
        };
        if flipped {
            outcome.invert()
        } else {
            outcome
        }
    }

    /// The cached outcome of `(a, b)` without computing on a miss; queries
    /// with `a > b` return the inverted cached outcome. Unlike
    /// [`get_or_compute`](ComparisonCache::get_or_compute) this does not
    /// touch the hit/miss tallies — it is the read path of the streaming
    /// session engine, which answers warm pairs from last wave's cache.
    ///
    /// # Panics
    /// Panics when `a == b` or either index is out of range.
    pub fn peek(&self, a: usize, b: usize) -> Option<Outcome> {
        assert!(a != b, "an algorithm is not compared against itself");
        assert!(a < self.p && b < self.p, "algorithm index out of range");
        let (lo, hi, flipped) = if a < b { (a, b, false) } else { (b, a, true) };
        self.slots[lo * self.p + hi].map(|o| if flipped { o.invert() } else { o })
    }

    /// Stores the outcome of `(a, b)` directly (inverted when `a > b`),
    /// overwriting any cached value — the write-back path of the batched
    /// session schedule, which computes outcomes in one parallel fan-out
    /// and then deposits them.
    ///
    /// # Panics
    /// Panics when `a == b` or either index is out of range.
    pub fn insert(&mut self, a: usize, b: usize, outcome: Outcome) {
        assert!(a != b, "an algorithm is not compared against itself");
        assert!(a < self.p && b < self.p, "algorithm index out of range");
        let (lo, hi, outcome) = if a < b {
            (a, b, outcome)
        } else {
            (b, a, outcome.invert())
        };
        self.slots[lo * self.p + hi] = Some(outcome);
    }

    /// Forgets every cached outcome involving algorithm `alg` (any pair
    /// `(alg, _)` or `(_, alg)`), keeping the rest warm. This is the
    /// session engine's invalidation: when a measurement wave updates one
    /// algorithm's sample, only the `p − 1` pairs touching it need fresh
    /// comparisons — all other pairs' outcomes are still pure functions of
    /// unchanged inputs.
    ///
    /// # Panics
    /// Panics when `alg` is out of range.
    pub fn invalidate_algorithm(&mut self, alg: usize) {
        assert!(alg < self.p, "algorithm index out of range");
        for other in 0..self.p {
            if other != alg {
                let (lo, hi) = if other < alg { (other, alg) } else { (alg, other) };
                self.slots[lo * self.p + hi] = None;
            }
        }
    }

    /// Number of queries answered from the cache since construction.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of queries that invoked the comparator since construction.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Outcome::{Better, Equivalent, Worse};

    #[test]
    fn caches_within_and_counts() {
        let mut cache = ComparisonCache::new(4);
        let mut calls = 0usize;
        let mut cmp = |a: usize, b: usize| {
            calls += 1;
            assert!(a < b, "cache must canonicalize the pair order");
            Equivalent
        };
        for _ in 0..5 {
            assert_eq!(cache.get_or_compute(2, 3, &mut cmp), Equivalent);
            assert_eq!(cache.get_or_compute(3, 2, &mut cmp), Equivalent);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 9);
    }

    #[test]
    fn antisymmetry_is_enforced() {
        let mut cache = ComparisonCache::new(2);
        let mut cmp = |_: usize, _: usize| Better;
        assert_eq!(cache.get_or_compute(0, 1, &mut cmp), Better);
        assert_eq!(cache.get_or_compute(1, 0, &mut cmp), Worse);
    }

    #[test]
    fn reset_forgets_outcomes() {
        let mut cache = ComparisonCache::new(2);
        assert_eq!(cache.get_or_compute(0, 1, &mut |_, _| Better), Better);
        cache.reset();
        assert_eq!(cache.get_or_compute(0, 1, &mut |_, _| Worse), Worse);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn peek_and_insert_round_trip_with_inversion() {
        let mut cache = ComparisonCache::new(3);
        assert_eq!(cache.peek(0, 1), None);
        cache.insert(1, 0, Worse); // stored canonically as (0, 1) = Better
        assert_eq!(cache.peek(0, 1), Some(Better));
        assert_eq!(cache.peek(1, 0), Some(Worse));
        // peek never touches the tallies.
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn invalidate_algorithm_clears_only_touching_pairs() {
        let mut cache = ComparisonCache::new(3);
        cache.insert(0, 1, Better);
        cache.insert(0, 2, Better);
        cache.insert(1, 2, Equivalent);
        cache.invalidate_algorithm(2);
        assert_eq!(cache.peek(0, 1), Some(Better), "untouched pair survives");
        assert_eq!(cache.peek(0, 2), None);
        assert_eq!(cache.peek(1, 2), None);
    }

    #[test]
    #[should_panic(expected = "not compared against itself")]
    fn self_comparison_panics() {
        let mut cache = ComparisonCache::new(2);
        cache.get_or_compute(1, 1, &mut |_, _| Equivalent);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut cache = ComparisonCache::new(2);
        cache.get_or_compute(0, 5, &mut |_, _| Equivalent);
    }
}
