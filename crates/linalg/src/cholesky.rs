//! Cholesky factorization of symmetric positive-definite matrices.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::triangular::{solve_lower, solve_lower_matrix, solve_upper, solve_upper_matrix};

/// The Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, stored as the lower factor `L`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors `a` as `L·Lᵀ`.
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular inputs and
    /// [`LinalgError::Singular`] when a pivot is non-positive (the matrix is
    /// not positive definite).
    ///
    /// Only the lower triangle of `a` is read, so callers holding a matrix
    /// that is symmetric only up to rounding (e.g. `AᵀA` assembled with a
    /// non-symmetric kernel) get a well-defined result.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "cholesky",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal: l_jj = sqrt(a_jj - Σ_{k<j} l_jk²)
            let mut d = a[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::Singular {
                    op: "cholesky",
                    pivot: j,
                });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            // Column below the diagonal: l_ij = (a_ij - Σ_{k<j} l_ik·l_jk)/l_jj
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // Both slices are within the already-computed triangle.
                let (ri, rj) = (i * n, j * n);
                let li = &l.as_slice()[ri..ri + j];
                let lj = &l.as_slice()[rj..rj + j];
                s -= crate::blas::dot(li, lj);
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrow the lower factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Consume the factorization and return `L`.
    pub fn into_l(self) -> Matrix {
        self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via the two triangular solves `L·y = b`, `Lᵀ·x = y`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = solve_lower(&self.l, b)?;
        solve_upper(&self.l.transpose(), &y)
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let y = solve_lower_matrix(&self.l, b)?;
        solve_upper_matrix(&self.l.transpose(), &y)
    }

    /// Inverse of the factored matrix, computed by solving against the
    /// identity. Exposed because the paper's RLS expression is written with
    /// an explicit inverse; [`Cholesky::solve_matrix`] is the cheaper path.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix: `det(A) = Π l_jj²`.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for j in 0..self.dim() {
            let v = self.l[(j, j)];
            d *= v * v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemv;
    use crate::gemm::gemm_naive;
    use crate::random::{random_spd, random_vector};
    use rand::prelude::*;

    #[test]
    fn factor_known_matrix() {
        // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((ch.l()[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((ch.l()[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(ch.l()[(0, 1)], 0.0);
    }

    #[test]
    fn reconstruction_l_lt() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = random_spd(&mut rng, 25);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = gemm_naive(ch.l(), &ch.l().transpose()).unwrap();
        assert!(rec.approx_eq(&a, 1e-7), "max diff {}", rec.try_sub(&a).unwrap().max_abs());
    }

    #[test]
    fn solve_roundtrip() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = random_spd(&mut rng, 30);
        let x_true = random_vector(&mut rng, 30);
        let b = gemv(&a, &x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (got, exp) in x.iter().zip(&x_true) {
            assert!((got - exp).abs() < 1e-5, "{got} vs {exp}");
        }
    }

    #[test]
    fn solve_matrix_roundtrip() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_spd(&mut rng, 16);
        let x_true = crate::random::random_matrix(&mut rng, 16, 3);
        let b = gemm_naive(&a, &x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-5));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = random_spd(&mut rng, 12);
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = gemm_naive(&a, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(12), 1e-6));
    }

    #[test]
    fn det_of_diagonal() {
        let a = Matrix::from_diag(&[4.0, 9.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_rectangular() {
        let err = Cholesky::factor(&Matrix::zeros(2, 3)).unwrap_err();
        assert!(matches!(err, LinalgError::NotSquare { .. }));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { op: "cholesky", .. }));
    }

    #[test]
    fn rejects_zero_matrix() {
        let err = Cholesky::factor(&Matrix::zeros(3, 3)).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 0, .. }));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[9.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert_eq!(ch.l()[(0, 0)], 3.0);
        assert_eq!(ch.solve(&[18.0]).unwrap(), vec![2.0]);
    }
}
