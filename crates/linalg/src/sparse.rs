//! Sparse linear algebra: COO assembly, CSR kernels, and deterministic
//! iterative solvers.
//!
//! Every workload the paper's clustering classifies elsewhere in this
//! workspace is dense and compute-bound. This module adds the
//! bandwidth-bound family: a [`CooMatrix`] triplet builder (the natural
//! output of FEM scatter-assembly) with a duplicate-summing
//! [`CooMatrix::to_csr`], a [`CsrMatrix`] with SpMV and sparse triangular
//! solves, and two deterministic iterative solvers — [`CsrMatrix::jacobi`]
//! and [`CsrMatrix::cg`] (Conjugate Gradient) — that fail with the typed
//! [`SparseError::NotConverged`] instead of returning garbage.
//!
//! ## Bit-identity contract with the dense kernels
//!
//! The sparse kernels apply, per output element, exactly the same fused
//! operations in exactly the same order as their dense counterparts, with
//! the structurally-zero entries *skipped*:
//!
//! * [`CsrMatrix::spmv`] accumulates each output row left to right through
//!   [`crate::fmadd`] starting from `+0.0` — the same sequence as a dense
//!   per-row fused loop over the full row, minus the zero entries.
//! * [`CsrMatrix::solve_lower`] / [`CsrMatrix::solve_upper`] subtract the
//!   off-diagonal contributions in the same column order as
//!   [`crate::triangular::solve_lower`] / [`solve_upper`]
//!   (ascending `j`), through the same [`crate::fmadd`], and divide by the
//!   same diagonal.
//!
//! Skipping a structural zero is *exactly* a no-op for the accumulator —
//! `fmadd(±0·x, s) == s` — **except** when the accumulator is `-0.0` or a
//! product underflows to `-0.0`. Starting the accumulator from `+0.0`
//! (SpMV) rules the first case out; the property tests pin the contract on
//! data away from the underflow range, and the doc on each kernel states
//! it. This is the same "equivalent algorithms stay bit-equal" discipline
//! the dense engine variants follow.
//!
//! ## Cost model
//!
//! Sparse kernels are bandwidth-bound: [`crate::flops`] prices them both in
//! FLOPs ([`crate::flops::spmv`], [`crate::flops::cg_iter`], …) and in
//! bytes moved ([`crate::flops::csr_bytes`], [`crate::flops::spmv_bytes`]),
//! and the simulator feeds the byte traffic into the device's working-set
//! roofline so offloading a sparse task is throttled by memory, not FLOPs.
//!
//! [`solve_upper`]: crate::triangular::solve_upper

use crate::blas::{dot, norm2};
use crate::matrix::Matrix;
use crate::triangular::SINGULAR_TOL;
use relperf_parallel::{parallel_map_indexed, Parallelism};

/// Typed errors for the sparse kernels and iterative solvers.
///
/// Kept separate from [`crate::LinalgError`] (which is `Eq`) because the
/// solver variants carry the achieved `f64` residual.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Operand shapes are incompatible for `op`.
    ShapeMismatch {
        /// The operation that failed.
        op: &'static str,
        /// Shape of the matrix operand.
        lhs: (usize, usize),
        /// Shape (or length, as `(len, 1)`) of the other operand.
        rhs: (usize, usize),
    },
    /// `op` requires a square matrix.
    NotSquare {
        /// The operation that failed.
        op: &'static str,
        /// The offending shape.
        shape: (usize, usize),
    },
    /// A kernel that divides by the diagonal found no stored diagonal
    /// entry in `row`.
    MissingDiagonal {
        /// The operation that failed.
        op: &'static str,
        /// The row with no stored diagonal.
        row: usize,
    },
    /// The stored diagonal entry in `row` is below the singularity
    /// threshold ([`crate::triangular::SINGULAR_TOL`], shared with the
    /// dense solves).
    SingularDiagonal {
        /// The operation that failed.
        op: &'static str,
        /// The row with the near-zero diagonal.
        row: usize,
    },
    /// The iterative solver exhausted its iteration budget above the
    /// requested tolerance. Carries the achieved residual so callers can
    /// decide whether "close" is close enough.
    NotConverged {
        /// The solver that failed.
        op: &'static str,
        /// Iterations actually performed.
        iterations: usize,
        /// Residual measure at the last iteration (2-norm of `b − A·x`
        /// for CG, infinity-norm update delta for Jacobi).
        residual: f64,
        /// The tolerance that was requested.
        tol: f64,
    },
    /// Conjugate Gradient observed non-positive curvature `pᵀA·p ≤ 0`:
    /// the matrix is not positive definite.
    IndefiniteBreakdown {
        /// The solver that failed.
        op: &'static str,
        /// Iteration at which the breakdown occurred.
        iteration: usize,
        /// The offending curvature value.
        curvature: f64,
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch {lhs:?} vs {rhs:?}")
            }
            SparseError::NotSquare { op, shape } => {
                write!(f, "{op}: matrix must be square, got {shape:?}")
            }
            SparseError::MissingDiagonal { op, row } => {
                write!(f, "{op}: no stored diagonal entry in row {row}")
            }
            SparseError::SingularDiagonal { op, row } => {
                write!(f, "{op}: near-zero diagonal in row {row}")
            }
            SparseError::NotConverged {
                op,
                iterations,
                residual,
                tol,
            } => write!(
                f,
                "{op}: not converged after {iterations} iterations \
                 (residual {residual:.3e} > tol {tol:.3e})"
            ),
            SparseError::IndefiniteBreakdown {
                op,
                iteration,
                curvature,
            } => write!(
                f,
                "{op}: indefinite breakdown at iteration {iteration} \
                 (pᵀAp = {curvature:.3e} ≤ 0)"
            ),
        }
    }
}

impl std::error::Error for SparseError {}

/// Result alias for the sparse kernels.
pub type SparseResult<T> = std::result::Result<T, SparseError>;

/// Coordinate-format (triplet) sparse matrix builder.
///
/// The natural target of FEM scatter-assembly: push `(row, col, value)`
/// triplets in any order — duplicates allowed — then convert once with
/// [`CooMatrix::to_csr`], which sums duplicates deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Empty builder with room for `cap` triplets.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records `value` at `(row, col)`. Duplicates accumulate additively
    /// at [`CooMatrix::to_csr`] time.
    ///
    /// # Panics
    /// Panics when the position is out of bounds (a programming error,
    /// like dense [`Matrix`] indexing).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "CooMatrix::push: ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Converts to CSR, **summing duplicate positions**.
    ///
    /// Triplets are stably sorted by `(row, col)`, so duplicates at one
    /// position are summed left to right in *insertion order* — the
    /// conversion is deterministic for a deterministic assembly loop, which
    /// is what keeps FEM assembly bit-identical across kernel engines.
    /// Explicit (and summed-to-) zeros are kept: they are part of the
    /// pattern the caller assembled.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        // Stable by construction: ties broken by the original index.
        order.sort_by_key(|&i| {
            let (r, c, _) = self.entries[i];
            (r, c, i)
        });
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for &i in &order {
            let (r, c, v) = self.entries[i];
            if last == Some((r, c)) {
                // Duplicate position: sum onto the previously kept entry.
                *vals.last_mut().expect("duplicate implies a kept entry") += v;
                continue;
            }
            last = Some((r, c));
            row_ptr[r + 1] += 1;
            col_idx.push(c);
            vals.push(v);
        }
        // Prefix-sum the per-row counts into offsets.
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// Compressed-sparse-row matrix: the kernel-facing format.
///
/// Per row, column indices are strictly ascending (guaranteed by every
/// constructor), which is what makes the kernels' left-to-right fused
/// accumulation match the dense reference order — see the
/// [module docs](crate::sparse) for the bit-identity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx` / `vals`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry, ascending within a row.
    col_idx: Vec<usize>,
    /// Value of each stored entry.
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// The `rows x cols` matrix with no stored entries (all zero).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds a CSR matrix from a dense one, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut coo = CooMatrix::new(m.rows(), m.cols());
        for (i, row) in m.rows_iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Densifies: stored entries land at their positions, the rest is zero.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let row = m.row_mut(i);
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                row[j] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when `rows == cols`.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column indices and values of row `i`, each ascending in column.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// The stored value at `(i, j)`, or `0.0` when the position is not in
    /// the pattern.
    ///
    /// # Panics
    /// Panics when the position is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "CsrMatrix::get: ({i}, {j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let (cols, vals) = self.row_entries(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// In-memory byte footprint of the CSR arrays (values + column indices
    /// + row offsets) — the model in [`crate::flops::csr_bytes`], computed
    /// for this concrete matrix.
    pub fn storage_bytes(&self) -> u64 {
        crate::flops::csr_bytes(self.rows, self.nnz())
    }

    fn check_vec(&self, op: &'static str, len: usize) -> SparseResult<()> {
        if len != self.cols {
            return Err(SparseError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: (len, 1),
            });
        }
        Ok(())
    }

    fn check_square(&self, op: &'static str) -> SparseResult<()> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                op,
                shape: self.shape(),
            });
        }
        Ok(())
    }

    #[inline]
    fn spmv_row(&self, i: usize, x: &[f64]) -> f64 {
        let (cols, vals) = self.row_entries(i);
        let mut s = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            s = crate::fmadd(v, x[j], s);
        }
        s
    }

    /// Sparse matrix–vector product `y = A·x`.
    ///
    /// Each output element is accumulated left to right through
    /// [`crate::fmadd`] from `+0.0` — the dense per-row fused loop with the
    /// structural zeros skipped, bit-identical to it for inputs free of
    /// `-0.0` and products that underflow (see the module docs).
    pub fn spmv(&self, x: &[f64]) -> SparseResult<Vec<f64>> {
        self.check_vec("spmv", x.len())?;
        Ok((0..self.rows).map(|i| self.spmv_row(i, x)).collect())
    }

    /// [`CsrMatrix::spmv`] with the output rows fanned over worker threads.
    ///
    /// Rows are independent, so any [`Parallelism`] — including the serial
    /// fallback — produces **bit-identical** output.
    pub fn spmv_with(&self, x: &[f64], parallelism: Parallelism) -> SparseResult<Vec<f64>> {
        self.check_vec("spmv", x.len())?;
        Ok(parallel_map_indexed(self.rows, parallelism, |i| {
            self.spmv_row(i, x)
        }))
    }

    /// Forward substitution `L·x = b` reading only the lower triangle
    /// (entries with column `> i` are ignored, like the dense solve never
    /// reading above the diagonal).
    ///
    /// Applies, per row, the same fused subtractions in the same ascending
    /// column order as [`crate::triangular::solve_lower`], so for a
    /// triangular matrix it is bit-identical to the dense solve on
    /// `to_dense()` (module-docs caveats apply). Requires a stored
    /// diagonal ([`SparseError::MissingDiagonal`]) of magnitude at least
    /// [`SINGULAR_TOL`] ([`SparseError::SingularDiagonal`]).
    pub fn solve_lower(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        self.check_square("sparse_solve_lower")?;
        self.check_vec("sparse_solve_lower", b.len())?;
        let mut x = b.to_vec();
        for i in 0..self.rows {
            let (cols, vals) = self.row_entries(i);
            let mut s = x[i];
            let mut diag = None;
            for (&j, &v) in cols.iter().zip(vals) {
                match j.cmp(&i) {
                    std::cmp::Ordering::Less => s = crate::fmadd(-v, x[j], s),
                    std::cmp::Ordering::Equal => diag = Some(v),
                    std::cmp::Ordering::Greater => break,
                }
            }
            let d = diag.ok_or(SparseError::MissingDiagonal {
                op: "sparse_solve_lower",
                row: i,
            })?;
            if d.abs() < SINGULAR_TOL {
                return Err(SparseError::SingularDiagonal {
                    op: "sparse_solve_lower",
                    row: i,
                });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Backward substitution `U·x = b` reading only the upper triangle —
    /// the mirror of [`CsrMatrix::solve_lower`], bit-identical to
    /// [`crate::triangular::solve_upper`] on the densified matrix.
    pub fn solve_upper(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        self.check_square("sparse_solve_upper")?;
        self.check_vec("sparse_solve_upper", b.len())?;
        let mut x = b.to_vec();
        for i in (0..self.rows).rev() {
            let (cols, vals) = self.row_entries(i);
            let mut s = x[i];
            let mut diag = None;
            // Ascending j > i — the dense backward solve's inner order.
            for (&j, &v) in cols.iter().zip(vals) {
                match j.cmp(&i) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => diag = Some(v),
                    std::cmp::Ordering::Greater => s = crate::fmadd(-v, x[j], s),
                }
            }
            let d = diag.ok_or(SparseError::MissingDiagonal {
                op: "sparse_solve_upper",
                row: i,
            })?;
            if d.abs() < SINGULAR_TOL {
                return Err(SparseError::SingularDiagonal {
                    op: "sparse_solve_upper",
                    row: i,
                });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Jacobi iteration for `A·x = b` from `x₀ = 0`.
    ///
    /// Converges for strictly diagonally dominant `A`. Stops when the
    /// infinity-norm update `‖x⁽ᵏ⁺¹⁾ − x⁽ᵏ⁾‖∞ ≤ tol`; returns
    /// [`SparseError::NotConverged`] (carrying the last delta as the
    /// residual) when `max_iters` sweeps were not enough. One sweep costs
    /// [`crate::flops::jacobi_iter`] FLOPs.
    pub fn jacobi(&self, b: &[f64], max_iters: usize, tol: f64) -> SparseResult<IterSolve> {
        self.check_square("jacobi")?;
        self.check_vec("jacobi", b.len())?;
        let n = self.rows;
        // Validate the diagonal once up front.
        let mut diag = vec![0.0; n];
        for (i, d) in diag.iter_mut().enumerate() {
            let (cols, vals) = self.row_entries(i);
            let v = match cols.binary_search(&i) {
                Ok(pos) => vals[pos],
                Err(_) => {
                    return Err(SparseError::MissingDiagonal { op: "jacobi", row: i })
                }
            };
            if v.abs() < SINGULAR_TOL {
                return Err(SparseError::SingularDiagonal { op: "jacobi", row: i });
            }
            *d = v;
        }
        let mut x = vec![0.0; n];
        let mut x_next = vec![0.0; n];
        let mut delta = f64::INFINITY;
        for iter in 1..=max_iters {
            delta = 0.0_f64;
            for i in 0..n {
                let (cols, vals) = self.row_entries(i);
                let mut s = b[i];
                for (&j, &v) in cols.iter().zip(vals) {
                    if j != i {
                        s = crate::fmadd(-v, x[j], s);
                    }
                }
                let xi = s / diag[i];
                delta = delta.max((xi - x[i]).abs());
                x_next[i] = xi;
            }
            std::mem::swap(&mut x, &mut x_next);
            if delta <= tol {
                return Ok(IterSolve {
                    x,
                    iterations: iter,
                    residual: delta,
                });
            }
        }
        Err(SparseError::NotConverged {
            op: "jacobi",
            iterations: max_iters,
            residual: delta,
            tol,
        })
    }

    /// Conjugate Gradient for symmetric positive-definite `A·x = b` from
    /// `x₀ = 0`.
    ///
    /// Stops when the recurrence residual satisfies
    /// `‖r‖₂ ≤ tol · ‖b‖₂`; returns [`SparseError::NotConverged`]
    /// carrying the achieved residual otherwise, and
    /// [`SparseError::IndefiniteBreakdown`] when `pᵀA·p ≤ 0` exposes an
    /// indefinite matrix. Entirely serial and seeded by nothing — the
    /// same inputs give the same iterates on every build. One iteration
    /// costs [`crate::flops::cg_iter`] FLOPs.
    pub fn cg(&self, b: &[f64], max_iters: usize, tol: f64) -> SparseResult<IterSolve> {
        let (solve, converged) = self.cg_inner(b, max_iters, Some(tol))?;
        if converged {
            Ok(solve)
        } else {
            Err(SparseError::NotConverged {
                op: "cg",
                iterations: solve.iterations,
                residual: solve.residual,
                tol,
            })
        }
    }

    /// Conjugate Gradient run for **exactly** `iters` iterations (no
    /// tolerance test), from `x₀ = 0`.
    ///
    /// This is the FEM workload's solver: a fixed iteration count makes the
    /// work — and therefore the FLOP/byte price,
    /// `iters ·` [`crate::flops::cg_iter`] — a deterministic function of
    /// the mesh, so the simulator and the real run price the task
    /// identically. Only an exact-zero residual (the solution was reached
    /// in exact arithmetic) ends the loop early; the returned
    /// [`IterSolve::iterations`] reports the sweeps actually run.
    pub fn cg_fixed(&self, b: &[f64], iters: usize) -> SparseResult<IterSolve> {
        let (solve, _) = self.cg_inner(b, iters, None)?;
        Ok(solve)
    }

    /// Shared CG loop. `tol = None` disables the convergence test (fixed
    /// iteration count). Returns the solve and whether it converged (always
    /// `true` without a tolerance).
    fn cg_inner(
        &self,
        b: &[f64],
        max_iters: usize,
        tol: Option<f64>,
    ) -> SparseResult<(IterSolve, bool)> {
        self.check_square("cg")?;
        self.check_vec("cg", b.len())?;
        let n = self.rows;
        let bnorm = norm2(b);
        if bnorm == 0.0 {
            // b = 0 ⇒ x = 0 exactly; nothing to iterate.
            return Ok((
                IterSolve {
                    x: vec![0.0; n],
                    iterations: 0,
                    residual: 0.0,
                },
                true,
            ));
        }
        let threshold = tol.map(|t| t * bnorm);
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut p = r.clone();
        let mut q = vec![0.0; n];
        let mut rz = dot(&r, &r);
        let mut residual = rz.sqrt();
        for iter in 1..=max_iters {
            // q = A·p
            for (i, qi) in q.iter_mut().enumerate() {
                *qi = self.spmv_row(i, &p);
            }
            let pq = dot(&p, &q);
            if pq <= 0.0 {
                return Err(SparseError::IndefiniteBreakdown {
                    op: "cg",
                    iteration: iter,
                    curvature: pq,
                });
            }
            let alpha = rz / pq;
            for (xi, &pi) in x.iter_mut().zip(&p) {
                *xi = crate::fmadd(alpha, pi, *xi);
            }
            for (ri, &qi) in r.iter_mut().zip(&q) {
                *ri = crate::fmadd(-alpha, qi, *ri);
            }
            let rz_next = dot(&r, &r);
            residual = rz_next.sqrt();
            let done = match threshold {
                Some(th) => residual <= th,
                // Fixed-count mode: only an exactly-solved system stops early.
                None => rz_next == 0.0,
            };
            if done {
                return Ok((
                    IterSolve {
                        x,
                        iterations: iter,
                        residual,
                    },
                    true,
                ));
            }
            let beta = rz_next / rz;
            for (pi, &ri) in p.iter_mut().zip(&r) {
                *pi = crate::fmadd(beta, *pi, ri);
            }
            rz = rz_next;
        }
        Ok((
            IterSolve {
                x,
                iterations: max_iters,
                residual,
            },
            tol.is_none(),
        ))
    }
}

/// The result of a successful iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSolve {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Residual measure at the final iteration (2-norm of the CG
    /// recurrence residual; infinity-norm update delta for Jacobi).
    pub residual: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;
    use crate::random::{random_matrix, random_spd, random_vector};
    use crate::triangular;
    use rand::prelude::*;

    /// Dense per-row fused mat-vec: the bit-identity oracle for SpMV.
    fn dense_fmadd_gemv(a: &Matrix, x: &[f64]) -> Vec<f64> {
        (0..a.rows())
            .map(|i| {
                let mut s = 0.0;
                for (j, &v) in a.row(i).iter().enumerate() {
                    s = crate::fmadd(v, x[j], s);
                }
                s
            })
            .collect()
    }

    fn random_sparse(rng: &mut StdRng, rows: usize, cols: usize, fill: f64) -> CooMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.random_range(0.0..1.0) < fill {
                    coo.push(i, j, rng.random_range(-1.0..1.0));
                }
            }
        }
        coo
    }

    #[test]
    fn coo_to_csr_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 1.5);
        coo.push(0, 0, 1.0);
        coo.push(1, 2, 0.25);
        coo.push(0, 0, -3.0);
        coo.push(1, 0, 2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0 + -3.0);
        assert_eq!(csr.get(1, 2), 1.5 + 0.25);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(0, 1), 0.0);
    }

    #[test]
    fn csr_columns_ascend_within_rows() {
        let mut rng = StdRng::seed_from_u64(11);
        let csr = random_sparse(&mut rng, 20, 17, 0.3).to_csr();
        for i in 0..20 {
            let (cols, _) = csr.row_entries(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i}: {cols:?}");
        }
    }

    #[test]
    fn dense_round_trip() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut d = random_matrix(&mut rng, 9, 13);
        // Punch some exact zeros into the pattern.
        for i in 0..9 {
            d.row_mut(i)[(i * 5) % 13] = 0.0;
        }
        let csr = CsrMatrix::from_dense(&d);
        assert!(csr.nnz() < 9 * 13);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let z = CsrMatrix::zeros(3, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.spmv(&[1.0; 4]).unwrap(), vec![0.0; 3]);
        let e = CooMatrix::new(0, 0).to_csr();
        assert_eq!(e.spmv(&[]).unwrap(), Vec::<f64>::new());
        // 1x1.
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0);
        let m = coo.to_csr();
        assert_eq!(m.spmv(&[3.0]).unwrap(), vec![6.0]);
        assert_eq!(m.solve_lower(&[8.0]).unwrap(), vec![4.0]);
        assert_eq!(m.solve_upper(&[8.0]).unwrap(), vec![4.0]);
    }

    #[test]
    fn spmv_matches_dense_fused_loop_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(rows, cols, fill) in &[(17, 17, 0.2), (40, 23, 0.1), (8, 31, 0.9)] {
            let csr = random_sparse(&mut rng, rows, cols, fill).to_csr();
            let dense = csr.to_dense();
            let x = random_vector(&mut rng, cols);
            let sparse_y = csr.spmv(&x).unwrap();
            assert_eq!(sparse_y, dense_fmadd_gemv(&dense, &x));
        }
    }

    #[test]
    fn spmv_parallel_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(14);
        let csr = random_sparse(&mut rng, 64, 64, 0.15).to_csr();
        let x = random_vector(&mut rng, 64);
        let serial = csr.spmv(&x).unwrap();
        for threads in [1, 2, 3, 7] {
            let par = csr
                .spmv_with(&x, Parallelism::with_threads(threads))
                .unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn sparse_triangular_matches_dense_bitwise() {
        let mut rng = StdRng::seed_from_u64(15);
        for n in [1usize, 5, 23, 48] {
            // Sparsify a dense lower-triangular matrix but keep the diagonal.
            let mut l = crate::random::random_lower_triangular(&mut rng, n);
            for i in 0..n {
                for j in 0..i {
                    if rng.random_range(0.0..1.0) < 0.6 {
                        l.row_mut(i)[j] = 0.0;
                    }
                }
            }
            let b = random_vector(&mut rng, n);
            let csr = CsrMatrix::from_dense(&l);
            assert_eq!(
                csr.solve_lower(&b).unwrap(),
                triangular::solve_lower(&l, &b).unwrap(),
                "lower n = {n}"
            );
            let u = l.transpose();
            let ucsr = CsrMatrix::from_dense(&u);
            assert_eq!(
                ucsr.solve_upper(&b).unwrap(),
                triangular::solve_upper(&u, &b).unwrap(),
                "upper n = {n}"
            );
        }
    }

    #[test]
    fn triangular_ignores_other_triangle() {
        // A full matrix solved as lower-triangular must read only j <= i.
        let d = Matrix::from_rows(&[&[2.0, 99.0], &[1.0, 4.0]]).unwrap();
        let csr = CsrMatrix::from_dense(&d);
        let x = csr.solve_lower(&[2.0, 6.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.25]);
    }

    #[test]
    fn triangular_missing_diagonal_is_typed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0); // no (1,1)
        let csr = coo.to_csr();
        assert_eq!(
            csr.solve_lower(&[1.0, 1.0]),
            Err(SparseError::MissingDiagonal {
                op: "sparse_solve_lower",
                row: 1
            })
        );
    }

    #[test]
    fn triangular_singular_diagonal_is_typed() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1e-20);
        assert!(matches!(
            coo.to_csr().solve_upper(&[1.0]),
            Err(SparseError::SingularDiagonal { row: 0, .. })
        ));
    }

    #[test]
    fn diagonal_only_matrix_solves_everywhere() {
        let d = Matrix::from_diag(&[2.0, 4.0, 8.0]);
        let csr = CsrMatrix::from_dense(&d);
        let b = [2.0, 4.0, 8.0];
        assert_eq!(csr.solve_lower(&b).unwrap(), vec![1.0; 3]);
        assert_eq!(csr.solve_upper(&b).unwrap(), vec![1.0; 3]);
        let jac = csr.jacobi(&b, 5, 0.0).unwrap();
        assert_eq!(jac.x, vec![1.0; 3]);
        let cg = csr.cg(&b, 5, 1e-12).unwrap();
        assert!(cg.x.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn jacobi_converges_on_diagonally_dominant() {
        let mut rng = StdRng::seed_from_u64(16);
        let d = crate::random::random_diag_dominant(&mut rng, 24);
        let csr = CsrMatrix::from_dense(&d);
        let xstar = random_vector(&mut rng, 24);
        let b = crate::blas::gemv(&d, &xstar).unwrap();
        let solve = csr.jacobi(&b, 500, 1e-13).unwrap();
        for (xi, si) in xstar.iter().zip(&solve.x) {
            assert!((xi - si).abs() < 1e-10, "{xi} vs {si}");
        }
    }

    #[test]
    fn jacobi_not_converged_carries_residual() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = crate::random::random_diag_dominant(&mut rng, 16);
        let csr = CsrMatrix::from_dense(&d);
        let b = random_vector(&mut rng, 16);
        match csr.jacobi(&b, 2, 1e-15) {
            Err(SparseError::NotConverged {
                op,
                iterations,
                residual,
                tol,
            }) => {
                assert_eq!(op, "jacobi");
                assert_eq!(iterations, 2);
                assert!(residual > tol);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn cg_matches_cholesky_solution() {
        let mut rng = StdRng::seed_from_u64(18);
        for n in [1usize, 2, 10, 32] {
            let spd = random_spd(&mut rng, n);
            let b = random_vector(&mut rng, n);
            let csr = CsrMatrix::from_dense(&spd);
            let cg = csr.cg(&b, 10 * n + 10, 1e-12).unwrap();
            let direct = Cholesky::factor(&spd).unwrap().solve(&b).unwrap();
            for (c, d) in cg.x.iter().zip(&direct) {
                assert!(
                    crate::approx_eq(*c, *d, 1e-7),
                    "n = {n}: cg {c} vs cholesky {d}"
                );
            }
        }
    }

    #[test]
    fn cg_not_converged_is_typed() {
        let mut rng = StdRng::seed_from_u64(19);
        let spd = random_spd(&mut rng, 30);
        let csr = CsrMatrix::from_dense(&spd);
        let b = random_vector(&mut rng, 30);
        match csr.cg(&b, 1, 1e-14) {
            Err(SparseError::NotConverged { op, iterations, .. }) => {
                assert_eq!(op, "cg");
                assert_eq!(iterations, 1);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn cg_indefinite_breakdown_is_typed() {
        let d = Matrix::from_diag(&[1.0, -1.0]);
        let csr = CsrMatrix::from_dense(&d);
        // b aligned with the negative eigendirection trips pᵀAp < 0.
        match csr.cg(&[0.0, 1.0], 10, 1e-10) {
            Err(SparseError::IndefiniteBreakdown { op, iteration, curvature }) => {
                assert_eq!(op, "cg");
                assert_eq!(iteration, 1);
                assert!(curvature <= 0.0);
            }
            other => panic!("expected IndefiniteBreakdown, got {other:?}"),
        }
    }

    #[test]
    fn cg_fixed_runs_exactly_the_requested_iterations() {
        let mut rng = StdRng::seed_from_u64(20);
        let spd = random_spd(&mut rng, 40);
        let csr = CsrMatrix::from_dense(&spd);
        let b = random_vector(&mut rng, 40);
        let s = csr.cg_fixed(&b, 17).unwrap();
        assert_eq!(s.iterations, 17);
        // And the fixed run's iterates match the tolerance run's prefix:
        // same loop, so a converged cg() at k iterations equals cg_fixed(k).
        let conv = csr.cg(&b, 400, 1e-10).unwrap();
        let fixed = csr.cg_fixed(&b, conv.iterations).unwrap();
        assert_eq!(fixed.x, conv.x);
        assert_eq!(fixed.residual, conv.residual);
    }

    #[test]
    fn cg_zero_rhs_short_circuits() {
        let csr = CsrMatrix::from_dense(&Matrix::identity(4));
        let s = csr.cg(&[0.0; 4], 10, 1e-12).unwrap();
        assert_eq!(s.x, vec![0.0; 4]);
        assert_eq!(s.iterations, 0);
    }

    #[test]
    fn shape_errors_are_typed() {
        let csr = CsrMatrix::zeros(3, 4);
        assert!(matches!(
            csr.spmv(&[1.0; 3]),
            Err(SparseError::ShapeMismatch { op: "spmv", .. })
        ));
        assert!(matches!(
            csr.cg(&[1.0; 4], 1, 1e-3),
            Err(SparseError::NotSquare { op: "cg", .. })
        ));
        let sq = CsrMatrix::zeros(4, 4);
        assert!(matches!(
            sq.solve_lower(&[1.0; 3]),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = SparseError::NotConverged {
            op: "cg",
            iterations: 9,
            residual: 0.5,
            tol: 1e-9,
        };
        let s = format!("{e}");
        assert!(s.contains("cg") && s.contains("9"), "{s}");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn coo_push_out_of_bounds_panics() {
        CooMatrix::new(2, 2).push(2, 0, 1.0);
    }
}
