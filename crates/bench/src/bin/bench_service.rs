//! Machine-readable benchmark of the multi-tenant session service:
//! wave-completion latency and scheduler throughput across tenant counts,
//! synchronous drain loop vs pipelined background scheduler. Writes
//! `BENCH_service.json`.
//!
//! The sweep runs 1 → 128 tenants against a registry whose tight
//! configuration holds at most 64 resident sessions (16 shards × 4
//! slots): above that, snapshot-on-evict kicks in and sessions commute
//! between residency and the spill store every wave. Before any timing,
//! each tenant count is driven three ways — roomy synchronous (the
//! reference, nothing ever spills), tight synchronous, and tight
//! pipelined — and all three final score tables are asserted
//! bit-identical; above capacity the tight runs are additionally required
//! to show `spills > 0` and `rehydrations > 0`, so the numbers measure a
//! registry that really is thrashing, with identical results.
//!
//! The latency unit is **per-tenant wave completion**: the time from a
//! tenant's `submit_all` of one wave (4 `Extend` + 1 `Score`) to its
//! responses being available. In the synchronous mode every tenant waits
//! for the full `run_batch`; in the pipelined mode scheduler threads
//! drain shards independently, so early tenants complete while later
//! ones are still queuing.
//!
//! Run from the workspace root:
//!
//! ```bash
//! cargo run --release -p relperf-bench --bin bench_service
//! ```
//!
//! Single-core container caveat: with one hardware thread the pipelined
//! scheduler timeslices rather than overlaps, so its throughput ≈ the
//! synchronous loop; the signal to check there is bit-identity under
//! spill churn and that pipelining adds no overhead. On multi-core hosts
//! the shard partitions genuinely run in parallel.

use rand::prelude::*;
use relperf_core::cluster::{ClusterConfig, Parallelism, ScoreTable};
use relperf_core::session::ConvergenceCriterion;
use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
use relperf_measure::Sample;
use relperf_service::prelude::*;
use relperf_service::service::SessionService;
use std::time::{Duration, Instant};

const ALGORITHMS: usize = 4;
const WAVES: usize = 6;
const WAVE_SIZE: usize = 5;
const SHARDS: usize = 16;
/// Tight registry: 16 shards × 4 slots = 64 resident sessions. The
/// sweep's top tenant counts exceed this on purpose.
const TIGHT_SLOTS: usize = 4;

fn comparator() -> BootstrapComparator {
    BootstrapComparator::with_config(
        42,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    )
}

fn noisy(center: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| center + rng.random_range(-0.2..0.2)).collect()
}

fn wave_ops(tenant: u64, wave: usize) -> Vec<SessionOp> {
    let mut ops: Vec<SessionOp> = (0..ALGORITHMS)
        .map(|alg| SessionOp::Extend {
            alg,
            values: noisy(
                1.0 + alg as f64,
                WAVE_SIZE,
                (tenant << 32) ^ ((wave as u64) << 8) ^ alg as u64,
            ),
        })
        .collect();
    ops.push(SessionOp::Score);
    ops
}

fn limits(tight: bool) -> ServiceLimits {
    if tight {
        ServiceLimits {
            sessions_per_shard: TIGHT_SLOTS,
            ..ServiceLimits::default()
        }
    } else {
        ServiceLimits::default()
    }
}

struct RunResult {
    /// Final score table per tenant (for the bit-identity assertion).
    tables: Vec<ScoreTable>,
    /// Ops executed.
    ops: usize,
    /// Per-tenant wave-completion latencies in seconds.
    latencies: Vec<f64>,
    /// Total wall time spent driving waves.
    total_s: f64,
    stats: ServiceStats,
}

fn create_all<C: relperf_measure::ScratchThreeWayComparator + Send + Sync>(
    service: &SessionService<C>,
    tenants: u64,
) {
    let config = ClusterConfig::with_repetitions(50);
    for t in 0..tenants {
        service
            .create_session(
                t,
                1,
                SessionSpec {
                    algorithms: ALGORITHMS,
                    config,
                    seed: 7 + t,
                    criterion: ConvergenceCriterion::default(),
                },
            )
            .expect("admission");
    }
}

fn final_tables(per_tenant: &mut [Vec<ScoreTable>]) -> Vec<ScoreTable> {
    per_tenant
        .iter_mut()
        .map(|waves| waves.pop().expect("every tenant scored"))
        .collect()
}

/// The PR-5-style synchronous loop: submit every tenant's wave, then one
/// blocking `run_batch`. A `ShardFull` during registry thrash (every
/// resident has queued ops, so there is no idle victim to spill) is
/// handled the way a sync caller must: drain, then retry.
fn drive_sync(tenants: u64, tight: bool) -> RunResult {
    let service = SessionService::new(comparator(), SHARDS, Parallelism::serial(), limits(tight));
    create_all(&service, tenants);
    let mut per_tenant: Vec<Vec<ScoreTable>> = (0..tenants).map(|_| Vec::new()).collect();
    let mut latencies = Vec::new();
    let mut ops = 0usize;
    let started = Instant::now();
    for wave in 0..WAVES {
        let mut submit_at: Vec<Option<Instant>> = vec![None; tenants as usize];
        // Absorbs one drain's responses: a tenant's Scored response marks
        // its wave complete (mid-wave retry drains count too — their
        // responses must not be dropped).
        let absorb = |responses: Vec<OpResponse>,
                          per_tenant: &mut Vec<Vec<ScoreTable>>,
                          latencies: &mut Vec<f64>,
                          submit_at: &[Option<Instant>]| {
            let done = Instant::now();
            for r in responses {
                if let Ok(OpOutcome::Scored(w)) = &r.result {
                    let t = r.key.tenant as usize;
                    per_tenant[t].push(w.table.clone());
                    let at = submit_at[t].expect("scored before submitting");
                    latencies.push(done.duration_since(at).as_secs_f64());
                } else {
                    r.result.as_ref().expect("scripted ops never fail");
                }
            }
        };
        for t in 0..tenants {
            let mut group = wave_ops(t, wave);
            submit_at[t as usize] = Some(Instant::now());
            let seqs = loop {
                match service.submit_all(t, 1, std::mem::take(&mut group)) {
                    Ok(seqs) => break seqs,
                    Err(ServiceError::ShardFull { .. }) => {
                        // No idle victim to spill: drain queued work, retry.
                        let responses = service.run_batch();
                        absorb(responses, &mut per_tenant, &mut latencies, &submit_at);
                        group = wave_ops(t, wave);
                    }
                    Err(e) => panic!("admission failed: {e}"),
                }
            };
            ops += seqs.len();
        }
        let responses = service.run_batch();
        absorb(responses, &mut per_tenant, &mut latencies, &submit_at);
    }
    RunResult {
        tables: final_tables(&mut per_tenant),
        ops,
        latencies,
        total_s: started.elapsed().as_secs_f64(),
        stats: service.stats(),
    }
}

/// The pipelined runtime: background scheduler threads drain shard
/// partitions on their own cadence; the driver only submits and awaits.
fn drive_pipelined(tenants: u64, tight: bool, threads: usize) -> RunResult {
    let service = SessionService::new(comparator(), SHARDS, Parallelism::serial(), limits(tight));
    create_all(&service, tenants);
    let rt = ServiceRuntime::start(
        service,
        RuntimeConfig {
            scheduler_threads: threads,
            cadence: Duration::from_micros(200),
            ..Default::default()
        },
    );
    let mut per_tenant: Vec<Vec<ScoreTable>> = (0..tenants).map(|_| Vec::new()).collect();
    let mut latencies = Vec::new();
    let mut ops = 0usize;
    let started = Instant::now();
    for wave in 0..WAVES {
        let mut submitted_at: Vec<(u64, Instant, Vec<u64>)> = Vec::new();
        for t in 0..tenants {
            let mut group = wave_ops(t, wave);
            let at = Instant::now();
            let seqs = loop {
                match rt.submit_all(t, 1, std::mem::take(&mut group)) {
                    Ok(seqs) => break seqs,
                    Err(ServiceError::ShardFull { .. }) => {
                        // The background threads are already draining;
                        // yield and retry like a real client under
                        // backpressure.
                        std::thread::sleep(Duration::from_micros(200));
                        group = wave_ops(t, wave);
                    }
                    Err(e) => panic!("admission failed: {e}"),
                }
            };
            ops += seqs.len();
            submitted_at.push((t, at, seqs));
        }
        for (t, at, seqs) in &submitted_at {
            let responses = rt
                .await_responses(*t, seqs, Duration::from_secs(600))
                .expect("pipelined wave");
            latencies.push(at.elapsed().as_secs_f64());
            for r in responses {
                if let Ok(OpOutcome::Scored(w)) = &r.result {
                    per_tenant[*t as usize].push(w.table.clone());
                } else {
                    r.result.as_ref().expect("scripted ops never fail");
                }
            }
        }
    }
    let stats = rt.stats();
    rt.shutdown();
    RunResult {
        tables: final_tables(&mut per_tenant),
        ops,
        latencies,
        total_s: started.elapsed().as_secs_f64(),
        stats,
    }
}

struct Entry {
    tenants: u64,
    mode: &'static str,
    ops: usize,
    total_s: f64,
    ops_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    spills: u64,
    rehydrations: u64,
}

fn entry(tenants: u64, mode: &'static str, r: &RunResult) -> Entry {
    let latencies = Sample::new(r.latencies.clone()).expect("non-empty");
    Entry {
        tenants,
        mode,
        ops: r.ops,
        total_s: r.total_s,
        ops_per_s: r.ops as f64 / r.total_s,
        p50_ms: latencies.quantile(0.5) * 1e3,
        p99_ms: latencies.quantile(0.99) * 1e3,
        spills: r.stats.spills,
        rehydrations: r.stats.rehydrations,
    }
}

fn main() {
    let capacity = (SHARDS * TIGHT_SLOTS) as u64;
    let mut entries: Vec<Entry> = Vec::new();
    for &tenants in &[1u64, 4, 16, 64, 128] {
        // Bit-identity first: roomy sync is the reference; tight sync and
        // tight pipelined must match it exactly even while the registry
        // spills and rehydrates under them.
        let reference = drive_sync(tenants, false);
        let sync = drive_sync(tenants, true);
        let pipelined = drive_pipelined(tenants, true, 2);
        assert_eq!(
            reference.tables, sync.tables,
            "tight sync diverged at {tenants} tenants"
        );
        assert_eq!(
            reference.tables, pipelined.tables,
            "pipelined diverged at {tenants} tenants"
        );
        if tenants > capacity {
            for (label, r) in [("sync", &sync), ("pipelined", &pipelined)] {
                assert!(
                    r.stats.spills > 0 && r.stats.rehydrations > 0,
                    "{label} at {tenants} tenants (> {capacity} slots) never spilled: {:?}",
                    r.stats
                );
            }
        }
        entries.push(entry(tenants, "sync", &sync));
        entries.push(entry(tenants, "pipelined", &pipelined));
    }

    println!(
        "{:<8} {:<10} {:>8} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "tenants", "mode", "ops", "total [s]", "ops/s", "p50 [ms]", "p99 [ms]", "spills", "rehyd"
    );
    let mut json = String::from(
        "{\n  \"bench\": \"service\",\n  \"units\": {\"throughput\": \"ops/s\", \"latency\": \"ms per tenant wave (submit -> responses available)\"},\n  \"registry\": {\"shards\": 16, \"sessions_per_shard\": 4, \"resident_capacity\": 64},\n  \"note\": \"6 waves x (4 Extend + 1 Score) per tenant; roomy-sync reference vs tight-sync vs tight-pipelined asserted bit-identical before timing; above 64 tenants the tight registry must spill and rehydrate\",\n  \"entries\": [\n",
    );
    for (i, e) in entries.iter().enumerate() {
        println!(
            "{:<8} {:<10} {:>8} {:>12.4} {:>12.1} {:>10.3} {:>10.3} {:>8} {:>8}",
            e.tenants, e.mode, e.ops, e.total_s, e.ops_per_s, e.p50_ms, e.p99_ms, e.spills,
            e.rehydrations
        );
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"mode\": \"{}\", \"ops\": {}, \"total_s\": {:.6}, \"ops_per_s\": {:.1}, \"wave_p50_ms\": {:.4}, \"wave_p99_ms\": {:.4}, \"spills\": {}, \"rehydrations\": {}}}{}\n",
            e.tenants,
            e.mode,
            e.ops,
            e.total_s,
            e.ops_per_s,
            e.p50_ms,
            e.p99_ms,
            e.spills,
            e.rehydrations,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");
}
