//! The shared sorted-merge cursor.
//!
//! Three statistics in this crate walk two cached sorted views
//! ([`Sample::sorted`](crate::Sample::sorted)) as one merged ascending
//! sequence: the Mann–Whitney pooled ranking
//! ([`ranksum::mann_whitney_u`](crate::ranksum::mann_whitney_u)), the
//! Kolmogorov–Smirnov distance
//! ([`ecdf::ks_distance`](crate::ecdf::ks_distance)), and the range-overlap
//! diagnostic ([`Sample::range_overlap`](crate::Sample::range_overlap)).
//! They used to hand-roll the same two-cursor loop with three different
//! tie conventions; [`merge_tie_groups`] is the single implementation they
//! all ride on — O(nₐ + n_b), allocation-free, one visit per distinct
//! value.

/// One tie group in the merged ascending walk of two sorted slices: a
/// distinct value, its multiplicity on each side, and the cumulative
/// counts of elements `≤ value` on each side (everything a rank, an ECDF
/// step, or a range count needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieGroup {
    /// The distinct value this group collects.
    pub value: f64,
    /// Multiplicity of `value` in the first slice.
    pub count_a: usize,
    /// Multiplicity of `value` in the second slice.
    pub count_b: usize,
    /// Number of elements of the first slice `≤ value` (i.e. `nₐ·Fₐ(value)`).
    pub cum_a: usize,
    /// Number of elements of the second slice `≤ value` (i.e. `n_b·F_b(value)`).
    pub cum_b: usize,
}

impl TieGroup {
    /// Total multiplicity of the group across both sides.
    pub fn count(&self) -> usize {
        self.count_a + self.count_b
    }

    /// Average 1-based pooled rank of the group's members — the tie
    /// convention of the Mann–Whitney test. The group occupies pooled
    /// ranks `cum_a + cum_b − count + 1 ..= cum_a + cum_b`; the average is
    /// their midpoint.
    pub fn average_rank(&self) -> f64 {
        let end = self.cum_a + self.cum_b;
        let start = end - self.count() + 1;
        (start + end) as f64 / 2.0
    }
}

/// Walks two ascending slices as one merged sequence of [`TieGroup`]s,
/// calling `visit` once per distinct value across both sides, in
/// ascending order.
///
/// Equal values on the two sides are collected into a *single* group, so
/// the caller never sees a tie split by which side it came from — the
/// property that makes average ranks and ECDF steps well-defined. Runs in
/// O(nₐ + n_b) with zero allocations.
///
/// Both slices must be sorted ascending (as [`Sample::sorted`] guarantees);
/// this is checked with `debug_assert!` only.
///
/// # Examples
///
/// ```
/// use relperf_measure::merge::merge_tie_groups;
///
/// let a = [1.0, 2.0, 2.0];
/// let b = [2.0, 3.0];
/// let mut seen = Vec::new();
/// merge_tie_groups(&a, &b, |g| seen.push((g.value, g.count_a, g.count_b)));
/// assert_eq!(seen, vec![(1.0, 1, 0), (2.0, 2, 1), (3.0, 0, 1)]);
/// ```
///
/// [`Sample::sorted`]: crate::Sample::sorted
pub fn merge_tie_groups(a: &[f64], b: &[f64], mut visit: impl FnMut(&TieGroup)) {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "first slice not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "second slice not sorted");
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        // The next distinct value, ascending across both sides.
        let value = match (a.get(i), b.get(j)) {
            (Some(&u), Some(&v)) => u.min(v),
            (Some(&u), None) => u,
            (None, Some(&v)) => v,
            (None, None) => unreachable!("loop condition"),
        };
        let start_a = i;
        while i < a.len() && a[i] == value {
            i += 1;
        }
        let start_b = j;
        while j < b.len() && b[j] == value {
            j += 1;
        }
        visit(&TieGroup {
            value,
            count_a: i - start_a,
            count_b: j - start_b,
            cum_a: i,
            cum_b: j,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(a: &[f64], b: &[f64]) -> Vec<TieGroup> {
        let mut out = Vec::new();
        merge_tie_groups(a, b, |g| out.push(*g));
        out
    }

    #[test]
    fn disjoint_slices_interleave() {
        let gs = groups(&[1.0, 3.0], &[2.0, 4.0]);
        let values: Vec<f64> = gs.iter().map(|g| g.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(gs.iter().all(|g| g.count() == 1));
        // Cumulative counts close over both sides.
        let last = gs.last().unwrap();
        assert_eq!((last.cum_a, last.cum_b), (2, 2));
    }

    #[test]
    fn cross_side_ties_form_one_group() {
        let gs = groups(&[1.0, 2.0, 2.0], &[2.0, 2.0, 5.0]);
        assert_eq!(gs.len(), 3);
        let tie = gs[1];
        assert_eq!(tie.value, 2.0);
        assert_eq!((tie.count_a, tie.count_b), (2, 2));
        // Pooled ranks 2..=5 → average 3.5.
        assert_eq!(tie.average_rank(), 3.5);
    }

    #[test]
    fn one_side_empty() {
        let gs = groups(&[], &[1.0, 1.0]);
        assert_eq!(gs.len(), 1);
        assert_eq!((gs[0].count_a, gs[0].count_b), (0, 2));
        assert_eq!(gs[0].average_rank(), 1.5);
    }

    #[test]
    fn cumulative_counts_are_ecdf_numerators() {
        let a = [1.0, 2.0, 2.0, 7.0];
        let b = [2.0, 3.0];
        merge_tie_groups(&a, &b, |g| {
            assert_eq!(g.cum_a, a.iter().filter(|&&v| v <= g.value).count());
            assert_eq!(g.cum_b, b.iter().filter(|&&v| v <= g.value).count());
        });
    }
}
