//! Spectral condition numbers and regularization diagnostics for the RLS
//! `MathTask`.
//!
//! The paper's Procedure 6 feeds each iteration's penalty back as the next
//! regularizer `λ`; these helpers quantify how `λ` moves the Gram matrix's
//! condition number — the numerical side of the algorithm-equivalence
//! story (the Cholesky and QR RLS paths differ precisely in how they cope
//! with ill-conditioned Gram matrices).

use crate::eigen::symmetric_eigen;
use crate::error::Result;
use crate::gemm::syrk_ata;
use crate::matrix::Matrix;

/// Spectral (2-norm) condition number of a symmetric positive-definite
/// matrix: `λ_max / λ_min`.
///
/// Returns `f64::INFINITY` when the smallest eigenvalue is non-positive
/// (the matrix is singular or indefinite to working precision).
pub fn spd_condition_number(a: &Matrix) -> Result<f64> {
    let e = symmetric_eigen(a)?;
    let max = e.values.first().copied().unwrap_or(0.0);
    let min = e.values.last().copied().unwrap_or(0.0);
    if min <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(max / min)
}

/// Condition number of the regularized Gram matrix `AᵀA + λI`.
pub fn rls_gram_condition(a: &Matrix, lambda: f64) -> Result<f64> {
    let mut gram = syrk_ata(a);
    gram.add_diag_mut(lambda);
    spd_condition_number(&gram)
}

/// The smallest `λ` from `candidates` whose regularized Gram matrix meets
/// the target condition number, or `None` if none does. This is the
/// selection rule an energy-constrained device would use to keep the
/// cheap Cholesky path numerically safe instead of paying for QR.
pub fn min_lambda_for_condition(
    a: &Matrix,
    candidates: &[f64],
    target: f64,
) -> Result<Option<f64>> {
    let mut sorted: Vec<f64> = candidates.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite lambdas"));
    for &lambda in &sorted {
        if rls_gram_condition(a, lambda)? <= target {
            return Ok(Some(lambda));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_matrix;
    use rand::prelude::*;

    #[test]
    fn identity_has_condition_one() {
        assert!((spd_condition_number(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_condition_is_ratio() {
        let a = Matrix::from_diag(&[10.0, 2.0, 1.0]);
        assert!((spd_condition_number(&a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_is_infinite() {
        let a = Matrix::from_diag(&[1.0, 0.0]);
        assert!(spd_condition_number(&a).unwrap().is_infinite());
    }

    #[test]
    fn regularization_improves_conditioning() {
        let mut rng = StdRng::seed_from_u64(151);
        let a = random_matrix(&mut rng, 20, 20);
        let loose = rls_gram_condition(&a, 1e-9).unwrap();
        let tight = rls_gram_condition(&a, 1.0).unwrap();
        let very_tight = rls_gram_condition(&a, 100.0).unwrap();
        assert!(tight < loose);
        assert!(very_tight < tight);
        assert!(very_tight >= 1.0);
    }

    #[test]
    fn min_lambda_selection() {
        let mut rng = StdRng::seed_from_u64(152);
        let a = random_matrix(&mut rng, 15, 15);
        let candidates = [1e-6, 1e-3, 1.0, 1e3];
        // A huge target accepts the smallest lambda.
        let l = min_lambda_for_condition(&a, &candidates, 1e12).unwrap();
        assert_eq!(l, Some(1e-6));
        // A tiny target forces a large lambda (or none).
        let l = min_lambda_for_condition(&a, &candidates, 1.5).unwrap();
        assert!(l.is_none() || l.unwrap() >= 1.0);
        // Impossible target.
        let l = min_lambda_for_condition(&a, &candidates, 0.5).unwrap();
        assert_eq!(l, None);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(spd_condition_number(&Matrix::zeros(2, 3)).is_err());
    }
}
