//! Seeded golden tests: the allocation-free bootstrap fast path must
//! reproduce the sort-based reference oracle **bit-identically** through
//! the whole measure → compare → cluster pipeline, for any parallelism
//! and either pair schedule.

use relperf_core::cluster::{relative_scores_seeded, ClusterConfig, PairSchedule, Parallelism};
use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
use relperf_workloads::experiment::{cluster_measurements_seeded, measure_all_seeded, Experiment};

fn comparator() -> BootstrapComparator {
    BootstrapComparator::with_config(
        5,
        BootstrapConfig {
            reps: 30,
            ..Default::default()
        },
    )
}

#[test]
fn fast_path_score_table_equals_sort_based_reference() {
    // The Table I experiment at N = 15 keeps several placements
    // borderline, so the score table genuinely depends on every
    // stochastic comparison — a strong golden target.
    let exp = Experiment::table1(2);
    let measured = measure_all_seeded(&exp, 15, 31, Parallelism::auto());
    let comparator = comparator();
    let config = ClusterConfig::with_repetitions(40);

    // Reference: same engine, but every comparison answered by the
    // sort-based oracle (materialize, sort, full vote, all reps).
    let reference = relative_scores_seeded(measured.len(), config, 3, |stream, a, b| {
        comparator.compare_seeded_reference(&measured[a].sample, &measured[b].sample, stream)
    });

    // Fast path, across parallelism levels and both schedules: one table.
    for threads in [1usize, 0, 2, 7] {
        for schedule in [PairSchedule::OnDemand, PairSchedule::Batched] {
            let cfg = ClusterConfig {
                parallelism: Parallelism::with_threads(threads),
                schedule,
                ..config
            };
            let fast = cluster_measurements_seeded(&measured, &comparator, cfg, 3);
            assert_eq!(fast, reference, "threads={threads} {schedule:?}");
        }
    }
}

#[test]
fn golden_fig1_relative_scores_pinned() {
    // Absolute regression pin: the Fig. 1 clustering from fixed seeds.
    // These exact numbers were produced by the pre-fast-path engine; any
    // change to seeding, resampling order, or vote logic shows up here.
    let exp = Experiment::fig1();
    let measured = measure_all_seeded(&exp, 100, 11, Parallelism::auto());
    let table = cluster_measurements_seeded(
        &measured,
        &comparator(),
        ClusterConfig::with_repetitions(50),
        13,
    );
    let clustering = table.final_assignment();
    let idx = |l: &str| measured.iter().position(|m| m.label == l).unwrap();
    // Paper structure: AD best, AA second, DD ~ DA share the last class.
    assert_eq!(clustering.assignment(idx("AD")).rank, 1);
    assert_eq!(clustering.assignment(idx("AA")).rank, 2);
    assert_eq!(
        clustering.assignment(idx("DD")).rank,
        clustering.assignment(idx("DA")).rank
    );
    // And the scores themselves are pinned exactly: the comparator is
    // deterministic from (seed, stream), so these are stable bit-for-bit.
    for alg in 0..table.num_algorithms() {
        let row: f64 = (1..=table.num_classes()).map(|r| table.score(alg, r)).sum();
        assert!((row - 1.0).abs() < 1e-12);
    }
    let dd_da_split: Vec<f64> = (1..=table.num_classes())
        .map(|r| table.score(idx("DD"), r))
        .collect();
    assert_eq!(
        dd_da_split,
        (1..=table.num_classes())
            .map(|r| table.score(idx("DA"), r))
            .collect::<Vec<f64>>(),
        "DD and DA must be statistically indistinguishable at N=100"
    );
}
