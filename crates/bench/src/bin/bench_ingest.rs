//! Machine-readable before/after benchmark of the measurement ingest
//! engine: times the seed's per-element push loop (replicated in-bin as
//! [`BaselineSample`] — `Vec::insert` into the sorted view plus an O(n)
//! position fixup per element) against the gallop-merge bulk extend path
//! (flat below [`Sample::TIER_THRESHOLD`], tiered leaf runs above it),
//! ingesting waves of 1 000 measurements at a time, and writes the
//! medians to `BENCH_ingest.json`.
//!
//! Before any timing, the harness asserts the growth contract: bulk
//! extend, the baseline push loop, and `Sample::new` over the
//! concatenated waves must agree **bit for bit** on values, sorted view,
//! and position map — and the bounded-memory sketch must agree with the
//! exact engine within its documented rank-error bound. A benchmark of a
//! wrong answer is worthless.
//!
//! The baseline is O(n²) in total, so at N = 1e6 it is not run to
//! completion: its time is extrapolated quadratically from the measured
//! N = 1e5 run and the entry is flagged `"baseline_extrapolated": true`
//! in the JSON.
//!
//! Run from the workspace root:
//!
//! ```bash
//! cargo run --release -p relperf-bench --bin bench_ingest
//! ```

use rand::prelude::*;
use relperf_measure::{QuantileSketch, Sample};
use std::hint::black_box;
use std::time::Instant;

/// The seed ingest path, reproduced verbatim: every push does a binary
/// search, a `Vec::insert` memmove, and a full pass over the position
/// map. O(n) per element, O(n²) for a session.
struct BaselineSample {
    values: Vec<f64>,
    sorted: Vec<f64>,
    sorted_pos: Vec<usize>,
}

impl BaselineSample {
    fn new() -> Self {
        BaselineSample {
            values: Vec::new(),
            sorted: Vec::new(),
            sorted_pos: Vec::new(),
        }
    }

    fn push(&mut self, value: f64) {
        assert!(value.is_finite());
        // Upper bound: ties sort stably by insertion order, and this value
        // is the latest insertion, so it lands after all equal values.
        let ins = self.sorted.partition_point(|&v| v <= value);
        self.sorted.insert(ins, value);
        for pos in &mut self.sorted_pos {
            if *pos >= ins {
                *pos += 1;
            }
        }
        self.sorted_pos.push(ins);
        self.values.push(value);
    }
}

/// Noisy timing-like measurements with deliberate ties (quantised to a
/// tick) so the stable-tie ordering contract is actually exercised.
fn measurements(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let raw = 1.0 + 0.25 * rng.random_range(-1.0f64..1.0);
            (raw * 4096.0).round() / 4096.0
        })
        .collect()
}

/// Median wall time of `runs` executions of `f`, in seconds.
fn median_time(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

const WAVE: usize = 1_000;

fn ingest_bulk(values: &[f64]) -> Sample {
    let mut it = values.chunks(WAVE);
    let mut s = Sample::new(it.next().expect("non-empty").to_vec()).expect("finite");
    for wave in it {
        s.extend_from_slice(wave).expect("finite");
    }
    s
}

fn ingest_baseline(values: &[f64]) -> BaselineSample {
    let mut s = BaselineSample::new();
    for &v in values {
        s.push(v);
    }
    s
}

/// The growth contract, checked before anything is timed: bulk extend ≡
/// seed push loop ≡ batch construction, bit for bit, on all three views.
fn assert_bit_identity(values: &[f64]) {
    let bulk = ingest_bulk(values);
    let base = ingest_baseline(values);
    let batch = Sample::new(values.to_vec()).expect("finite");
    assert_eq!(bulk.values(), base.values.as_slice());
    assert_eq!(bulk.sorted(), base.sorted.as_slice());
    assert_eq!(bulk.sorted_positions(), base.sorted_pos.as_slice());
    assert_eq!(batch.values(), bulk.values());
    assert_eq!(batch.sorted(), bulk.sorted());
    assert_eq!(batch.sorted_positions(), bulk.sorted_positions());
}

/// Exact-vs-sketch agreement, checked before the sketch is timed: every
/// probed quantile of the bounded-memory sketch must sit within the
/// documented rank-error bound of the exact engine.
fn assert_sketch_agreement(sample: &Sample, capacity: usize) {
    let sketch = QuantileSketch::from_sample(sample, capacity);
    assert_eq!(sketch.count(), sample.len() as u64);
    assert_eq!(sketch.min(), sample.min());
    assert_eq!(sketch.max(), sample.max());
    let n = sample.len() as f64;
    let k = capacity as f64;
    let rank_bound = (n * (n / k).log2() / (2.0 * k)).ceil().max(1.0) as usize;
    for &q in &[0.05, 0.25, 0.5, 0.75, 0.95] {
        let approx = sketch.quantile(q);
        let target = (q * (sample.len() - 1) as f64).round() as usize;
        let lo = sample.order_stat(target.saturating_sub(rank_bound));
        let hi = sample.order_stat((target + rank_bound).min(sample.len() - 1));
        assert!(
            (lo..=hi).contains(&approx),
            "sketch q{q} = {approx} outside exact rank band [{lo}, {hi}]"
        );
    }
}

struct Entry {
    name: String,
    before_s: f64,
    after_s: f64,
    baseline_extrapolated: bool,
    tiered: bool,
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();

    // ---- correctness gates, before any clock starts --------------------
    for &n in &[WAVE, 10 * WAVE, 100 * WAVE] {
        assert_bit_identity(&measurements(n, 11));
    }
    // At 1e6 the baseline is infeasible; batch construction is the oracle.
    {
        let big = measurements(1_000_000, 13);
        let bulk = ingest_bulk(&big);
        let batch = Sample::new(big.clone()).expect("finite");
        assert_eq!(bulk.sorted(), batch.sorted());
        assert_eq!(bulk.sorted_positions(), batch.sorted_positions());
        assert!(bulk.ingest_stats().tiered, "1e6 sample should be tiered");
        assert_sketch_agreement(&bulk, 256);
    }
    println!("bit-identity and sketch-agreement gates passed\n");

    // ---- before/after per N -------------------------------------------
    // At 1e5 the baseline run is seconds; at 1e6 it would be ~100x that,
    // so it is extrapolated quadratically (total work is O(n²)).
    let mut baseline_1e5 = f64::NAN;
    for &(n, runs) in &[(WAVE, 9usize), (100 * WAVE, 3), (1_000 * WAVE, 3)] {
        let values = measurements(n, 17);
        let (before_s, extrapolated) = if n <= 100 * WAVE {
            let t = median_time(runs, || {
                black_box(ingest_baseline(black_box(&values)));
            });
            if n == 100 * WAVE {
                baseline_1e5 = t;
            }
            (t, false)
        } else {
            let scale = (n as f64 / (100 * WAVE) as f64).powi(2);
            (baseline_1e5 * scale, true)
        };
        let after_s = median_time(runs.max(3), || {
            black_box(ingest_bulk(black_box(&values)));
        });
        let tiered = ingest_bulk(&values).ingest_stats().tiered;
        entries.push(Entry {
            name: format!("ingest/n{n}_wave{WAVE}"),
            before_s,
            after_s,
            baseline_extrapolated: extrapolated,
            tiered,
        });
    }

    // ---- bounded-memory sketch ingest at 1e6 ---------------------------
    // Same wave stream, but the consumer is the opt-in sketch: O(k log n)
    // memory instead of O(n). Before = exact bulk ingest at the same N.
    {
        let values = measurements(1_000 * WAVE, 17);
        let exact_s = entries.last().expect("entries").after_s;
        let sketch_s = median_time(3, || {
            let mut sk = QuantileSketch::new(256);
            for wave in values.chunks(WAVE) {
                sk.extend(wave);
            }
            black_box(sk.quantile(0.5));
        });
        entries.push(Entry {
            name: format!("sketch/n{}_wave{WAVE}_k256", 1_000 * WAVE),
            before_s: exact_s,
            after_s: sketch_s,
            baseline_extrapolated: false,
            tiered: false,
        });
    }

    // Render: human table to stdout, machine-readable JSON to disk.
    println!(
        "{:<28} {:>12} {:>12} {:>9}  {}",
        "benchmark", "before", "after", "speedup", "notes"
    );
    let mut json =
        String::from("{\n  \"bench\": \"ingest\",\n  \"units\": \"seconds\",\n  \"wave\": 1000,\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.before_s / e.after_s;
        let mut notes = Vec::new();
        if e.baseline_extrapolated {
            notes.push("baseline extrapolated O(n²)");
        }
        if e.tiered {
            notes.push("tiered");
        }
        println!(
            "{:<28} {:>9.3} ms {:>9.3} ms {:>8.1}x  {}",
            e.name,
            e.before_s * 1e3,
            e.after_s * 1e3,
            speedup,
            notes.join(", ")
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"before_median_s\": {:.3e}, \"after_median_s\": {:.3e}, \"speedup\": {:.1}, \"baseline_extrapolated\": {}, \"tiered\": {}}}{}\n",
            e.name,
            e.before_s,
            e.after_s,
            speedup,
            e.baseline_extrapolated,
            e.tiered,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("\nwrote BENCH_ingest.json");

    let million = entries
        .iter()
        .find(|e| e.name.contains("n1000000"))
        .expect("1e6 entry");
    assert!(
        million.before_s / million.after_s >= 50.0,
        "expected ≥ 50x at 1e6, got {:.1}x",
        million.before_s / million.after_s
    );
}
