//! Measurement collection, sample statistics, bootstrap resampling, and the
//! three-way distribution comparison at the heart of relative performance
//! analysis.
//!
//! The paper's methodology never reduces a set of performance measurements
//! to a single number. A measured algorithm is represented by a [`Sample`]
//! (all `N` measurements); two samples are compared with a
//! [`compare::ThreeWayComparator`] which returns one of three
//! [`compare::Outcome`]s — `Better`, `Worse`, or `Equivalent` — using the
//! bootstrap strategy of Sankaran & Bientinesi (arXiv:2010.07226), the
//! companion method paper cited as \[15\].
//!
//! Modules:
//!
//! * [`sample`] — the `Sample` type with quantiles, moments, histograms,
//!   and the tiered sorted index (gallop-merge bulk ingest, lazy flat
//!   views) the comparator fast path rides on.
//! * [`bootstrap`] — resampling engine (buffer- and count-vector forms),
//!   percentile confidence intervals, and the [`bootstrap::QuantilePlan`]
//!   one-pass quantile reader.
//! * [`compare`] — three-way comparators (bootstrap quantile-dominance,
//!   mean-CI/TOST, deterministic scripted comparators for tests), the
//!   [`compare::SeededThreeWayComparator`] contract for order-independent
//!   stochastic comparison, the [`compare::Scratch`] arena threaded
//!   through the allocation-free O(n) bootstrap round
//!   ([`compare::ScratchThreeWayComparator`]), and the batched parallel
//!   [`compare::BootstrapComparator::compare_batch`].
//! * [`ecdf`] — empirical CDFs and distribution distances (KS, overlap).
//! * [`merge`] — the shared sorted-merge cursor the rank/ECDF/overlap
//!   statistics walk their cached sorted views with.
//! * [`ranksum`] — the Mann–Whitney U comparator for ablations.
//! * [`sketch`] — opt-in bounded-memory quantile sketching and the
//!   **approximate** [`sketch::SketchComparator`] mode (never a default;
//!   the exact path is the oracle).
//! * [`timer`] — wall-clock measurement harness with warmup control.
//! * [`transform`] — sample cleaning (trim, winsorize, warmup removal).

#![warn(missing_docs)]

pub mod bootstrap;
pub mod compare;
pub mod ecdf;
pub mod merge;
pub mod ranksum;
pub mod sample;
pub mod sketch;
pub mod timer;
pub mod transform;

pub use compare::{
    stream_seed, BootstrapComparator, Outcome, Parallelism, Scratch,
    ScratchThreeWayComparator, SeededThreeWayComparator, ThreeWayComparator,
};
pub use sample::{IngestStats, Sample};
pub use sketch::{QuantileSketch, SketchComparator, SketchConfig};
