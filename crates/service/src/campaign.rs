//! Adaptive measurement campaigns driven *through* the service.
//!
//! A [`ServiceCampaign`] is the hosted counterpart of
//! [`AdaptiveExperiment`](relperf_workloads::adaptive::AdaptiveExperiment):
//! it draws measurement waves from the same carried per-placement RNG
//! streams ([`draw_wave`]), but
//! ingests and scores them by submitting `Extend`/`Score` ops to a
//! [`SessionService`] instead of owning a private session — so many
//! campaigns from many tenants share one scheduler, one comparator, and
//! one capacity budget.
//!
//! Determinism carries over unchanged: the measurement draws are a pure
//! function of the carried RNG states, and the service guarantees
//! wave-for-wave bit-identity with a private
//! [`ClusterSession`](relperf_core::session::ClusterSession) — so a
//! service campaign's tables equal `AdaptiveExperiment`'s for the same
//! seeds, budgets, and waves (tested in `tests/`).
//!
//! # Checkpoint / restore
//!
//! [`checkpoint`](ServiceCampaign::checkpoint) asks the service to
//! snapshot the hosted session, then attaches the campaign's carried
//! per-placement RNG states to the same [`snapshot`]
//! container. [`resume`](ServiceCampaign::resume) restores the session
//! into a service and continues every placement's stream exactly where it
//! stopped — the resumed campaign's remaining waves are bit-identical to
//! an uninterrupted run's.

use crate::error::ServiceError;
use crate::service::{OpOutcome, SessionOp, SessionService, SessionSpec, WaveOutcome};
use crate::snapshot;
use rand::rngs::StdRng;
use relperf_core::cluster::{ClusterConfig, Parallelism};
use relperf_core::session::ConvergenceCriterion;
use relperf_measure::ScratchThreeWayComparator;
use relperf_workloads::adaptive::{draw_wave, placement_rngs, WaveSchedule};
use relperf_workloads::experiment::Experiment;

/// A live hosted campaign (see the [module docs](self)).
#[derive(Debug)]
pub struct ServiceCampaign<'a, C: ScratchThreeWayComparator + Send + Sync> {
    service: &'a SessionService<C>,
    experiment: &'a Experiment,
    tenant: u64,
    session: u64,
    schedule: WaveSchedule,
    /// Fan-out of the measurement draws (the clustering parallelism is the
    /// session's own config).
    parallelism: Parallelism,
    /// Placement `i`'s measurement RNG, carried across waves and into
    /// checkpoints.
    rngs: Vec<StdRng>,
    /// Measurements drawn per placement so far.
    drawn: usize,
    /// The last scored wave, if any.
    last: Option<WaveOutcome>,
}

impl<'a, C: ScratchThreeWayComparator + Send + Sync> ServiceCampaign<'a, C> {
    /// Opens a hosted session for the campaign and sets up the carried
    /// measurement streams (the same streams
    /// [`measure_all_seeded`](relperf_workloads::experiment::measure_all_seeded)
    /// would use under `measure_seed`).
    ///
    /// # Panics
    /// Panics when the schedule is invalid (caller configuration, same
    /// policy as `AdaptiveExperiment::new`); tenant-shaped problems (spec
    /// validation, capacity) come back as typed errors.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        service: &'a SessionService<C>,
        experiment: &'a Experiment,
        tenant: u64,
        session: u64,
        config: ClusterConfig,
        criterion: ConvergenceCriterion,
        schedule: WaveSchedule,
        measure_seed: u64,
        cluster_seed: u64,
    ) -> Result<Self, ServiceError> {
        schedule.validate();
        let p = experiment.placements.len();
        service.create_session(
            tenant,
            session,
            SessionSpec {
                algorithms: p,
                config,
                seed: cluster_seed,
                criterion,
            },
        )?;
        Ok(ServiceCampaign {
            service,
            experiment,
            tenant,
            session,
            schedule,
            parallelism: config.parallelism,
            rngs: placement_rngs(measure_seed, p),
            drawn: 0,
            last: None,
        })
    }

    /// Resumes a campaign from checkpoint bytes produced by
    /// [`checkpoint`](ServiceCampaign::checkpoint): restores the hosted
    /// session and continues every placement's measurement stream from its
    /// carried RNG state.
    pub fn resume(
        service: &'a SessionService<C>,
        experiment: &'a Experiment,
        tenant: u64,
        session: u64,
        schedule: WaveSchedule,
        bytes: &[u8],
    ) -> Result<Self, ServiceError> {
        schedule.validate();
        let snap = snapshot::decode(bytes)?;
        let p = experiment.placements.len();
        if snap.rng_states.len() != p || snap.state.samples.len() != p {
            return Err(ServiceError::BadSnapshot(
                crate::snapshot::SnapshotError::Malformed(
                    "snapshot does not match the experiment's placement count",
                ),
            ));
        }
        // Uniform waves: every placement has drawn the same number of
        // measurements.
        let drawn = snap.state.samples[0].as_ref().map_or(0, |s| s.len());
        let last = snap.state.table.as_ref().map(|table| WaveOutcome {
            clustering: table.final_assignment(),
            table: table.clone(),
            converged: snap.state.converged,
            waves: snap.state.waves,
            stable_run: snap.state.stable_run,
        });
        let parallelism = snap.config.parallelism;
        let rngs = snap.rng_states.iter().map(|&s| StdRng::from_state(s)).collect();
        service.restore_snapshot(tenant, session, snap)?;
        Ok(ServiceCampaign {
            service,
            experiment,
            tenant,
            session,
            schedule,
            parallelism,
            rngs,
            drawn,
            last,
        })
    }

    /// Measurements drawn per placement so far.
    pub fn measurements_per_algorithm(&self) -> usize {
        self.drawn
    }

    /// `true` once the hosted session's criterion has been met.
    pub fn converged(&self) -> bool {
        self.last.as_ref().is_some_and(|w| w.converged)
    }

    /// `true` while the budget allows another wave.
    pub fn budget_remaining(&self) -> bool {
        self.schedule.next_wave(self.drawn) > 0
    }

    /// The last scored wave, if any.
    pub fn last_wave(&self) -> Option<&WaveOutcome> {
        self.last.as_ref()
    }

    /// Draws the next measurement wave, submits one `Extend` per placement
    /// plus a `Score` (atomically, via
    /// [`SessionService::submit_all`] — a backpressure rejection queues
    /// nothing and leaves the campaign's RNG streams untouched, so the
    /// wave can simply be retried after a drain), and drives a scheduler
    /// batch to completion.
    ///
    /// Note that [`SessionService::run_batch`] drains *all* queued work —
    /// a campaign is a well-behaved co-driver of a shared service, not an
    /// isolated client; other tenants' responses are simply delivered in
    /// the same batch. The campaign assumes it is the only driver
    /// *submitting ops for its own session* and that no other thread
    /// drains batches concurrently (a racing driver surfaces as a typed
    /// [`ServiceError::ResponseLost`], never a panic).
    ///
    /// # Panics
    /// Panics when the budget is exhausted (check
    /// [`budget_remaining`](ServiceCampaign::budget_remaining)).
    pub fn wave(&mut self) -> Result<&WaveOutcome, ServiceError> {
        let n = self.schedule.next_wave(self.drawn);
        assert!(n > 0, "measurement budget exhausted");
        // Draw on a copy of the carried streams; commit only once the
        // whole wave is admitted, so a rejected wave consumes nothing.
        let mut rngs = self.rngs.clone();
        let waves = draw_wave(self.experiment, &mut rngs, n, self.parallelism);
        let mut ops: Vec<SessionOp> = waves
            .into_iter()
            .enumerate()
            .map(|(alg, values)| SessionOp::Extend { alg, values })
            .collect();
        ops.push(SessionOp::Score);
        let seqs = self.service.submit_all(self.tenant, self.session, ops)?;
        self.rngs = rngs;
        self.drawn += n;
        let score_seq = *seqs.last().expect("ops were non-empty");
        let outcome = self.expect_outcome(score_seq)?;
        let OpOutcome::Scored(wave) = outcome else {
            unreachable!("a Score op answers with Scored");
        };
        self.last = Some(wave);
        Ok(self.last.as_ref().expect("just stored"))
    }

    /// Runs waves until the criterion is met or the budget is exhausted;
    /// `Ok(true)` when the campaign converged.
    pub fn run_to_convergence(&mut self) -> Result<bool, ServiceError> {
        while !self.converged() && self.budget_remaining() {
            self.wave()?;
        }
        Ok(self.converged())
    }

    /// Checkpoints the campaign: the hosted session's snapshot with this
    /// campaign's carried per-placement RNG states attached.
    pub fn checkpoint(&self) -> Result<Vec<u8>, ServiceError> {
        let seq = self
            .service
            .submit(self.tenant, self.session, SessionOp::Snapshot)?;
        let outcome = self.expect_outcome(seq)?;
        let OpOutcome::Snapshot(bytes) = outcome else {
            unreachable!("a Snapshot op answers with Snapshot");
        };
        let mut snap = snapshot::decode(&bytes)?;
        snap.rng_states = self.rngs.iter().map(StdRng::state).collect();
        Ok(snapshot::encode(&snap))
    }

    /// Closes the hosted session, freeing its slot.
    pub fn close(self) -> Result<(), ServiceError> {
        let seq = self
            .service
            .submit(self.tenant, self.session, SessionOp::Close)?;
        self.expect_outcome(seq).map(|_| ())
    }

    /// Runs a batch and extracts the response to `seq`, surfacing the
    /// first error among this campaign's other responses. When a racing
    /// driver drained the batch first the response is gone from our view:
    /// that is reported as [`ServiceError::ResponseLost`], not a panic.
    fn expect_outcome(&self, seq: u64) -> Result<OpOutcome, ServiceError> {
        let mut wanted = None;
        for response in self.service.run_batch() {
            if response.key.tenant != self.tenant || response.key.session != self.session {
                continue;
            }
            match response.result {
                Err(e) => return Err(e),
                Ok(outcome) if response.seq == seq => wanted = Some(outcome),
                Ok(_) => {}
            }
        }
        wanted.ok_or(ServiceError::ResponseLost { seq })
    }
}
