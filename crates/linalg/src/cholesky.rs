//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! [`Cholesky::factor`] is a right-looking **blocked** factorization whose
//! trailing updates run through the packed microkernel engine in
//! [`crate::gemm`]; [`Cholesky::factor_reference`] is the unblocked
//! right-looking loop. Both apply, per element, the same fused operations
//! in the same order, so they are **bit-identical** (property-tested) —
//! which is what lets the RLS workload swap kernel engines without
//! perturbing seeded experiment outputs.

use crate::error::{LinalgError, Result};
use crate::gemm::{gemm_region, gemm_region_parallel, Acc, PackArena, BLOCK};
use crate::matrix::Matrix;
use relperf_parallel::Parallelism;
use crate::triangular::{solve_lower, solve_lower_matrix, solve_upper, solve_upper_matrix};

/// Panel width of the blocked factorization: the number of columns
/// factored with the scalar loops before one microkernel-rich trailing
/// update is applied.
const PANEL: usize = 32;

/// The Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, stored as the lower factor `L`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

/// Copies the lower triangle of `a` into a fresh all-zero matrix.
fn lower_triangle_of(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
    }
    l
}

/// Factors the panel columns `j0..j1` (rows `j0..n`) in place with the
/// unblocked right-looking loops, updating only columns inside the panel.
///
/// The rank-1 update sweeps **rows** (contiguous memory) rather than
/// columns; per element it is the same fused multiply-add in the same
/// pivot order as the column sweep of [`Cholesky::factor_reference`], so
/// the results are bit-identical — only the traversal differs.
fn factor_panel(l: &mut Matrix, j0: usize, j1: usize) -> Result<()> {
    let n = l.rows();
    let mut colk = vec![0.0; j1 - j0];
    for k in j0..j1 {
        let d = l[(k, k)];
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::Singular {
                op: "cholesky",
                pivot: k,
            });
        }
        let djj = d.sqrt();
        l[(k, k)] = djj;
        for i in (k + 1)..n {
            l[(i, k)] /= djj;
        }
        // Stage column k's panel segment contiguously: the rank-1 update of
        // element (i, j) subtracts l[i][k]·l[j][k], and j < j1 always.
        let colk = &mut colk[..j1 - k - 1];
        for (j, v) in ((k + 1)..j1).zip(colk.iter_mut()) {
            *v = l[(j, k)];
        }
        for i in (k + 1)..n {
            let lik = l[(i, k)];
            // Lower triangle only: row i holds elements for j ≤ i.
            let jmax = j1.min(i + 1);
            if jmax > k + 1 {
                let row = &mut l.row_mut(i)[k + 1..jmax];
                crate::blas::axpy(-lik, &colk[..row.len()], row);
            }
        }
    }
    Ok(())
}

impl Cholesky {
    /// Factors `a` as `L·Lᵀ` with the blocked right-looking algorithm:
    /// panels of 32 columns are factored with the scalar reference
    /// loops, then the trailing submatrix absorbs `−L21·L21ᵀ` through the
    /// packed microkernel engine (lower triangle only; the diagonal blocks
    /// fall back to the scalar loop).
    ///
    /// Bit-identical to [`Cholesky::factor_reference`]: per element every
    /// update is the same fused multiply-add applied in the same pivot
    /// order, only batched differently.
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular inputs and
    /// [`LinalgError::Singular`] when a pivot is non-positive (the matrix is
    /// not positive definite).
    ///
    /// Only the lower triangle of `a` is read, so callers holding a matrix
    /// that is symmetric only up to rounding (e.g. `AᵀA` assembled with a
    /// non-symmetric kernel) get a well-defined result.
    pub fn factor(a: &Matrix) -> Result<Self> {
        Self::factor_impl(a, None)
    }

    /// [`Cholesky::factor`] with the off-diagonal trailing updates fanned
    /// out over row blocks (`gemm_region_parallel`) — panels and the
    /// diagonal blocks stay serial (lower-order work). Bit-identical to
    /// [`Cholesky::factor`] and [`Cholesky::factor_reference`] for any
    /// [`Parallelism`], including the serial fallback build: per element
    /// the fused update sequence is unchanged, only which thread computes
    /// its row band differs.
    pub fn factor_parallel_with(a: &Matrix, parallelism: Parallelism) -> Result<Self> {
        Self::factor_impl(a, Some(parallelism))
    }

    fn factor_impl(a: &Matrix, parallelism: Option<Parallelism>) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "cholesky",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = lower_triangle_of(a);
        let mut arena = PackArena::new();
        for j0 in (0..n).step_by(PANEL) {
            let j1 = (j0 + PANEL).min(n);
            factor_panel(&mut l, j0, j1)?;
            if j1 >= n {
                break;
            }
            // Trailing update: A22 −= L21·L21ᵀ, lower triangle only, with
            // the panel multipliers read from a private copy (the engine
            // may not alias its output region).
            let nb = j1 - j0;
            let rows = n - j1;
            let mut p = vec![0.0; rows * nb];
            for (dst, src) in p
                .chunks_exact_mut(nb)
                .zip(l.tile_rows(j1, j0, rows, nb))
            {
                dst.copy_from_slice(src);
            }
            for c0 in (j1..n).step_by(BLOCK) {
                let c1 = (c0 + BLOCK).min(n);
                // Diagonal block (rows c0..c1, cols c0..c1): lower-triangle
                // row sweeps, pivot (panel column) order per element —
                // bit-identical to the reference's column sweep.
                let mut colv = vec![0.0; c1 - c0];
                for lcol in 0..nb {
                    for (j, v) in (c0..c1).zip(colv.iter_mut()) {
                        *v = p[(j - j1) * nb + lcol];
                    }
                    for i in c0..c1 {
                        let li = colv[i - c0];
                        let row = &mut l.row_mut(i)[c0..=i];
                        crate::blas::axpy(-li, &colv[..row.len()], row);
                    }
                }
                // Off-diagonal block (rows c1..n, cols c0..c1): one
                // microkernel-driven `C −= P · P_blockᵀ`.
                if c1 < n {
                    match parallelism {
                        None => gemm_region(
                            l.as_mut_slice(), n, c1, c0, n - c1, c1 - c0, nb, &p, nb,
                            c1 - j1, 0, false, &p, nb, c0 - j1, 0, true, Acc::Sub,
                            &mut arena,
                        ),
                        Some(par) => gemm_region_parallel(
                            l.as_mut_slice(), n, c1, c0, n - c1, c1 - c0, nb, &p, nb,
                            c1 - j1, 0, false, &p, nb, c0 - j1, 0, true, Acc::Sub,
                            &mut arena, par,
                        ),
                    }
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The unblocked right-looking reference factorization: for each pivot
    /// column, scale it and immediately apply its rank-1 update to the
    /// whole trailing lower triangle. Kept as the oracle the blocked
    /// [`Cholesky::factor`] is property-tested against, and as the
    /// `Reference` engine path of the measured workloads.
    pub fn factor_reference(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "cholesky",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = lower_triangle_of(a);
        factor_panel(&mut l, 0, n)?;
        Ok(Cholesky { l })
    }

    /// Borrow the lower factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Consume the factorization and return `L`.
    pub fn into_l(self) -> Matrix {
        self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A·x = b` via the two triangular solves `L·y = b`, `Lᵀ·x = y`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = solve_lower(&self.l, b)?;
        solve_upper(&self.l.transpose(), &y)
    }

    /// Solves `A·X = B` for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let y = solve_lower_matrix(&self.l, b)?;
        solve_upper_matrix(&self.l.transpose(), &y)
    }

    /// Inverse of the factored matrix, computed by solving against the
    /// identity. Exposed because the paper's RLS expression is written with
    /// an explicit inverse; [`Cholesky::solve_matrix`] is the cheaper path.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix: `det(A) = Π l_jj²`.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for j in 0..self.dim() {
            let v = self.l[(j, j)];
            d *= v * v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemv;
    use crate::gemm::gemm_naive;
    use crate::random::{random_spd, random_vector};
    use rand::prelude::*;

    #[test]
    fn factor_known_matrix() {
        // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((ch.l()[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((ch.l()[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(ch.l()[(0, 1)], 0.0);
    }

    #[test]
    fn reconstruction_l_lt() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = random_spd(&mut rng, 25);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = gemm_naive(ch.l(), &ch.l().transpose()).unwrap();
        assert!(rec.approx_eq(&a, 1e-7), "max diff {}", rec.try_sub(&a).unwrap().max_abs());
    }

    #[test]
    fn solve_roundtrip() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = random_spd(&mut rng, 30);
        let x_true = random_vector(&mut rng, 30);
        let b = gemv(&a, &x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (got, exp) in x.iter().zip(&x_true) {
            assert!((got - exp).abs() < 1e-5, "{got} vs {exp}");
        }
    }

    #[test]
    fn solve_matrix_roundtrip() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_spd(&mut rng, 16);
        let x_true = crate::random::random_matrix(&mut rng, 16, 3);
        let b = gemm_naive(&a, &x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-5));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = random_spd(&mut rng, 12);
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = gemm_naive(&a, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(12), 1e-6));
    }

    #[test]
    fn det_of_diagonal() {
        let a = Matrix::from_diag(&[4.0, 9.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_rectangular() {
        let err = Cholesky::factor(&Matrix::zeros(2, 3)).unwrap_err();
        assert!(matches!(err, LinalgError::NotSquare { .. }));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { op: "cholesky", .. }));
    }

    #[test]
    fn rejects_zero_matrix() {
        let err = Cholesky::factor(&Matrix::zeros(3, 3)).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { pivot: 0, .. }));
    }

    #[test]
    fn blocked_bit_identical_to_reference_across_panels() {
        let mut rng = StdRng::seed_from_u64(25);
        for n in [1usize, 7, PANEL - 1, PANEL, PANEL + 1, 2 * PANEL + 3, 100] {
            let a = random_spd(&mut rng, n);
            let blocked = Cholesky::factor(&a).unwrap();
            let reference = Cholesky::factor_reference(&a).unwrap();
            assert_eq!(blocked, reference, "n={n}");
        }
    }

    #[test]
    fn parallel_trailing_update_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(26);
        for n in [1usize, PANEL + 3, 100, 2 * BLOCK + PANEL + 5] {
            let a = random_spd(&mut rng, n);
            let serial = Cholesky::factor(&a).unwrap();
            for threads in [1usize, 2, 3, 0] {
                let par =
                    Cholesky::factor_parallel_with(&a, Parallelism::with_threads(threads))
                        .unwrap();
                assert_eq!(par, serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[9.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert_eq!(ch.l()[(0, 0)], 3.0);
        assert_eq!(ch.solve(&[18.0]).unwrap(), vec![2.0]);
    }
}
