//! QR factorization via Householder reflections.
//!
//! [`Qr::factor`] applies each reflector to the trailing block with
//! contiguous **row sweeps** (`gemvᵀ`-style dot accumulation followed by a
//! `ger`-style rank-1 update), replacing the column-strided loops of
//! [`Qr::factor_reference`]. Per element both run the same fused
//! operations in the same order, so the two factorizations are
//! **bit-identical** (property-tested) — the row-major form just streams
//! the matrix at cache speed.

use crate::blas::axpy;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::triangular::solve_upper;

/// Householder QR factorization `A = Q·R` of an `m x n` matrix with `m ≥ n`.
///
/// `Q` is `m x m` orthogonal and `R` is `m x n` upper-trapezoidal. The
/// factorization is stored compactly (reflectors + `R`); `Q` is materialized
/// only on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Qr {
    /// Reflector vectors, one per eliminated column (each of length `m`,
    /// zero above its pivot index).
    reflectors: Vec<Vec<f64>>,
    /// The `R` factor (upper-trapezoidal `m x n`).
    r: Matrix,
}

/// Builds the Householder vector for column `k` of `r`, returning
/// `(v, vᵀv)` — or `None` for an identity reflector (zero column).
fn householder_vector(r: &Matrix, k: usize) -> Option<(Vec<f64>, f64)> {
    let m = r.rows();
    let mut v = vec![0.0; m];
    let mut norm_sq = 0.0;
    for i in k..m {
        let x = r[(i, k)];
        v[i] = x;
        norm_sq += x * x;
    }
    let norm = norm_sq.sqrt();
    if norm == 0.0 {
        return None;
    }
    let alpha = if v[k] >= 0.0 { -norm } else { norm };
    v[k] -= alpha;
    let vnorm_sq: f64 = v[k..].iter().map(|x| x * x).sum();
    if vnorm_sq == 0.0 {
        return None;
    }
    Some((v, vnorm_sq))
}

impl Qr {
    /// Factors `a` (`m x n`, `m ≥ n`) with Householder reflections,
    /// applying each reflector to the trailing columns in row-major
    /// sweeps: one pass accumulating every column's `vᵀ·r` dot product
    /// ([`axpy`] per row), one pass applying the rank-1 update. Per
    /// element the fused operations and their order match
    /// [`Qr::factor_reference`] exactly, so the result is bit-identical.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `m < n`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut r = a.clone();
        let mut reflectors = Vec::with_capacity(n);
        let mut dots = vec![0.0; n];
        for k in 0..n {
            let Some((v, vnorm_sq)) = householder_vector(&r, k) else {
                reflectors.push(vec![0.0; m]);
                continue;
            };
            // dots[j] = Σᵢ v[i]·r[i][j] for the trailing columns, i
            // ascending — the same accumulation order as the reference's
            // per-column dot loop.
            let width = n - k;
            let dots = &mut dots[..width];
            dots.fill(0.0);
            for i in k..m {
                axpy(v[i], &r.row(i)[k..], dots);
            }
            // scales[j] = 2·dot/vᵀv, then the rank-1 update row by row.
            for d in dots.iter_mut() {
                *d = 2.0 * *d / vnorm_sq;
            }
            for i in k..m {
                let vi = v[i];
                for (x, &s) in r.row_mut(i)[k..].iter_mut().zip(dots.iter()) {
                    *x = crate::fmadd(-s, vi, *x);
                }
            }
            reflectors.push(v);
        }
        // Clean tiny sub-diagonal residue so R is exactly trapezoidal.
        for j in 0..n {
            for i in (j + 1)..m {
                r[(i, j)] = 0.0;
            }
        }
        Ok(Qr { reflectors, r })
    }

    /// The column-sweep reference factorization, kept as the oracle
    /// [`Qr::factor`] is property-tested against.
    pub fn factor_reference(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut r = a.clone();
        let mut reflectors = Vec::with_capacity(n);
        for k in 0..n {
            let Some((v, vnorm_sq)) = householder_vector(&r, k) else {
                reflectors.push(vec![0.0; m]);
                continue;
            };
            // Apply H = I - 2 v vᵀ / (vᵀv) to R from the left, column by
            // column.
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot = crate::fmadd(v[i], r[(i, j)], dot);
                }
                let scale = 2.0 * dot / vnorm_sq;
                for i in k..m {
                    r[(i, j)] = crate::fmadd(-scale, v[i], r[(i, j)]);
                }
            }
            reflectors.push(v);
        }
        for j in 0..n {
            for i in (j + 1)..m {
                r[(i, j)] = 0.0;
            }
        }
        Ok(Qr { reflectors, r })
    }

    /// Borrow the `R` factor (`m x n`, upper-trapezoidal).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Number of rows of the factored matrix.
    pub fn m(&self) -> usize {
        self.r.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn n(&self) -> usize {
        self.r.cols()
    }

    /// Applies `Qᵀ` to a vector in place (the product of the stored
    /// reflectors in factorization order).
    pub fn apply_qt(&self, x: &mut [f64]) -> Result<()> {
        let m = self.m();
        if x.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_apply_qt",
                lhs: (m, 1),
                rhs: (x.len(), 1),
            });
        }
        for v in &self.reflectors {
            let vnorm_sq: f64 = v.iter().map(|a| a * a).sum();
            if vnorm_sq == 0.0 {
                continue;
            }
            let dot: f64 = v.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
            let scale = 2.0 * dot / vnorm_sq;
            for (xi, vi) in x.iter_mut().zip(v) {
                *xi -= scale * vi;
            }
        }
        Ok(())
    }

    /// Applies `Q` to a vector in place (reflectors in reverse order).
    pub fn apply_q(&self, x: &mut [f64]) -> Result<()> {
        let m = self.m();
        if x.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_apply_q",
                lhs: (m, 1),
                rhs: (x.len(), 1),
            });
        }
        for v in self.reflectors.iter().rev() {
            let vnorm_sq: f64 = v.iter().map(|a| a * a).sum();
            if vnorm_sq == 0.0 {
                continue;
            }
            let dot: f64 = v.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
            let scale = 2.0 * dot / vnorm_sq;
            for (xi, vi) in x.iter_mut().zip(v) {
                *xi -= scale * vi;
            }
        }
        Ok(())
    }

    /// Materializes the full `m x m` orthogonal factor `Q`.
    pub fn q(&self) -> Matrix {
        let m = self.m();
        let mut q = Matrix::zeros(m, m);
        for c in 0..m {
            let mut e = vec![0.0; m];
            e[c] = 1.0;
            self.apply_q(&mut e).expect("length matches by construction");
            for i in 0..m {
                q[(i, c)] = e[i];
            }
        }
        q
    }

    /// Least-squares solve: minimizes `‖A·x − b‖₂` via `R₁·x = (Qᵀb)₁..n`.
    ///
    /// Returns [`LinalgError::Singular`] when `R` has a (numerically) zero
    /// diagonal entry, i.e. `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.m(), self.n());
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve",
                lhs: (m, 1),
                rhs: (b.len(), 1),
            });
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb)?;
        let r1 = self.r.submatrix(0, 0, n, n).expect("R1 block in bounds");
        solve_upper(&r1, &qtb[..n])
    }

    /// Least-squares solve with a matrix right-hand side.
    pub fn solve_least_squares_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.m() {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_solve_matrix",
                lhs: (self.m(), self.n()),
                rhs: b.shape(),
            });
        }
        let n = self.n();
        let bt = b.transpose();
        let mut xt = Matrix::zeros(b.cols(), n);
        for c in 0..b.cols() {
            let x = self.solve_least_squares(bt.row(c))?;
            xt.row_mut(c).copy_from_slice(&x);
        }
        Ok(xt.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemv, norm2};
    use crate::gemm::gemm_naive;
    use crate::random::{random_matrix, random_vector};
    use rand::prelude::*;

    #[test]
    fn reconstruction_qr() {
        let mut rng = StdRng::seed_from_u64(41);
        let a = random_matrix(&mut rng, 12, 7);
        let qr = Qr::factor(&a).unwrap();
        let rec = gemm_naive(&qr.q(), qr.r()).unwrap();
        assert!(rec.approx_eq(&a, 1e-8), "max diff {}", rec.try_sub(&a).unwrap().max_abs());
    }

    #[test]
    fn row_sweep_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(48);
        for (m, n) in [(1, 1), (5, 3), (12, 7), (40, 40), (65, 30)] {
            let a = random_matrix(&mut rng, m, n);
            assert_eq!(
                Qr::factor(&a).unwrap(),
                Qr::factor_reference(&a).unwrap(),
                "shape {m}x{n}"
            );
        }
        // Zero columns take the identity-reflector path in both.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        assert_eq!(Qr::factor(&a).unwrap(), Qr::factor_reference(&a).unwrap());
    }

    #[test]
    fn q_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_matrix(&mut rng, 10, 6);
        let q = Qr::factor(&a).unwrap().q();
        let qtq = gemm_naive(&q.transpose(), &q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(10), 1e-8));
    }

    #[test]
    fn r_is_upper_trapezoidal() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = random_matrix(&mut rng, 9, 5);
        let qr = Qr::factor(&a).unwrap();
        for j in 0..5 {
            for i in (j + 1)..9 {
                assert_eq!(qr.r()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_exact_solve() {
        let mut rng = StdRng::seed_from_u64(44);
        let a = crate::random::random_diag_dominant(&mut rng, 15);
        let x_true = random_vector(&mut rng, 15);
        let b = gemv(&a, &x_true).unwrap();
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        for (g, e) in x.iter().zip(&x_true) {
            assert!((g - e).abs() < 1e-8);
        }
    }

    #[test]
    fn overdetermined_residual_is_orthogonal_to_range() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = random_matrix(&mut rng, 20, 6);
        let b = random_vector(&mut rng, 20);
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        let ax = gemv(&a, &x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| q - p).collect();
        // Normal equations: Aᵀ·r must vanish at the least-squares optimum.
        let at_r = crate::blas::gemv_t(&a, &resid).unwrap();
        assert!(norm2(&at_r) < 1e-8, "‖Aᵀr‖ = {}", norm2(&at_r));
    }

    #[test]
    fn apply_q_then_qt_is_identity() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = random_matrix(&mut rng, 8, 4);
        let qr = Qr::factor(&a).unwrap();
        let x0 = random_vector(&mut rng, 8);
        let mut x = x0.clone();
        qr.apply_q(&mut x).unwrap();
        qr.apply_qt(&mut x).unwrap();
        for (g, e) in x.iter().zip(&x0) {
            assert!((g - e).abs() < 1e-10);
        }
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(Qr::factor(&Matrix::zeros(3, 5)).is_err());
    }

    #[test]
    fn rank_deficient_detected_at_solve() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let err = qr.solve_least_squares(&[1.0, 1.0, 1.0]).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]).unwrap();
        // Factorization itself must not fail; solve reports singularity.
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn matrix_rhs_matches_vector_solves() {
        let mut rng = StdRng::seed_from_u64(47);
        let a = random_matrix(&mut rng, 10, 4);
        let b = random_matrix(&mut rng, 10, 3);
        let qr = Qr::factor(&a).unwrap();
        let x = qr.solve_least_squares_matrix(&b).unwrap();
        for c in 0..3 {
            let xc = qr.solve_least_squares(&b.col(c)).unwrap();
            for i in 0..4 {
                assert!((x[(i, c)] - xc[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_errors_on_apply() {
        let a = Matrix::identity(3);
        let qr = Qr::factor(&a).unwrap();
        let mut short = vec![1.0; 2];
        assert!(qr.apply_q(&mut short).is_err());
        assert!(qr.apply_qt(&mut short).is_err());
        assert!(qr.solve_least_squares(&[1.0, 2.0]).is_err());
        assert!(qr.solve_least_squares_matrix(&Matrix::zeros(2, 2)).is_err());
    }
}
