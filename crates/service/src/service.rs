//! The hosted session service: sharded registry + deterministic batch
//! scheduler + admission control.
//!
//! # Sharding
//!
//! Sessions are keyed by `(tenant, session)` and live in a **fixed array
//! of mutex-guarded shards**, each holding a hash map of hosted sessions
//! and that shard's request queue. The shard of a key is a pure function
//! of the key (`stream_seed(tenant, session) % shards`), so placement is
//! stable across runs and no global lock exists anywhere: admission takes
//! one shard lock; the scheduler takes each shard lock briefly to drain
//! its queue and to check sessions in and out. Shards are
//! capacity-bounded; an over-capacity insert **spills** the
//! least-recently used *idle* (no pending ops) session to its own
//! snapshot bytes (see below), or rejects when none is idle.
//!
//! # Snapshot-on-evict
//!
//! Registry capacity is a residency bound, not a session ceiling. When a
//! shard is full, the LRU idle resident is serialized through the
//! [`crate::snapshot`] codec and parked in the shard's **spill store**;
//! the next op addressed to a spilled session transparently rehydrates it
//! (decoding the bytes, restoring the session, spilling someone else if
//! the shard is still full) before the op is enqueued. Because the codec
//! round-trip is bit-exact, a session that was spilled and rehydrated
//! mid-campaign continues wave-for-wave identically to one that never
//! left memory — the golden test in `tests/checkpoint.rs` pins this down.
//! The spill store is itself bounded ([`ServiceLimits::spill_per_shard`]);
//! beyond it the oldest snapshot is dropped for good (a hard eviction),
//! and `spill_per_shard: 0` disables spilling entirely, restoring plain
//! LRU eviction.
//!
//! # Deterministic batch scheduling
//!
//! [`SessionService::submit`] only enqueues; [`SessionService::run_batch`]
//! drains every shard queue, orders all ops by `(tenant, seq)` — `seq` is
//! a global monotone ticket, so each tenant's ops keep their submission
//! order — groups them per session, and executes each session's group
//! sequentially while **independent sessions fan out across worker
//! threads** via
//! [`parallel_map_indexed_with`](relperf_parallel::parallel_map_indexed_with).
//! A session's results depend only on its own op sequence (everything
//! underneath is the seeded, stream-addressed engine), so for **any**
//! cross-tenant interleaving, shard count, and thread count the served
//! tables are bit-identical to driving a private
//! [`ClusterSession`] with the same
//! ops — property-tested in `tests/`.
//!
//! # Admission control
//!
//! Every rejection is a typed [`ServiceError`] and every accepted op
//! eventually gets a response from `run_batch` — the service never blocks
//! a caller and never panics on tenant input. Per-tenant in-flight caps
//! and per-shard queue depth bounds provide backpressure under overload,
//! and a service-wide **load shedder** rejects new ops with
//! [`ServiceError::Overloaded`] once the backlog of admitted-but-not-yet
//! -executed ops crosses [`ServiceLimits::max_backlog`] — cheap to
//! reject, cheap to retry once the scheduler catches up.
//!
//! # Durability (optional)
//!
//! A service built with [`SessionService::with_journal`] writes every
//! admitted op group, create, and restore to a per-shard append-only
//! journal (see [`crate::journal`]) *before* enqueuing, under the same
//! shard lock — so the durable order equals the admission order.
//! Executed batches advance a per-session applied-seq low-water mark,
//! periodic checkpoints truncate the journal (compaction), and
//! [`SessionService::recover`] rebuilds the whole service from the
//! stores as snapshot + replay of the suffix; by the determinism
//! contract above, recovered sessions continue wave-for-wave
//! bit-identical to a run that never crashed.

use crate::error::{RecoveryError, ServiceError};
use crate::journal::{
    self, CheckpointSession, DigestSession, JournalConfig, JournalIoError, JournalRecord,
    JournalStore,
};
use crate::snapshot::{self, fnv1a64, SessionSnapshot, SnapshotError};
use crate::stats::{ServiceStats, StatCounters};
use relperf_core::cluster::{ClusterConfig, Clustering, Parallelism, ScoreTable};
use relperf_core::session::{ClusterSession, ConvergenceCriterion};
use relperf_measure::{
    stream_seed, Outcome, Sample, ScratchThreeWayComparator, SeededThreeWayComparator,
    ThreeWayComparator,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifies one hosted session: a tenant id plus the tenant's own
/// session id. Different tenants' sessions never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionKey {
    /// The owning tenant.
    pub tenant: u64,
    /// The session id within the tenant's namespace.
    pub session: u64,
}

/// Everything needed to open a fresh session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Number of algorithms `p` the session clusters.
    pub algorithms: usize,
    /// Clustering configuration (repetitions, schedule; the parallelism
    /// only moves work around — results never depend on it).
    pub config: ClusterConfig,
    /// Clustering seed.
    pub seed: u64,
    /// Convergence criterion.
    pub criterion: ConvergenceCriterion,
}

impl SessionSpec {
    /// A spec over `algorithms` with the given seed and default config /
    /// criterion.
    pub fn new(algorithms: usize, seed: u64) -> Self {
        SessionSpec {
            algorithms,
            config: ClusterConfig::default(),
            seed,
            criterion: ConvergenceCriterion::default(),
        }
    }
}

/// One queued request against a hosted session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// Ingest one measurement for algorithm `alg`.
    Push {
        /// Algorithm index.
        alg: usize,
        /// The measurement.
        value: f64,
    },
    /// Ingest a wave of measurements for algorithm `alg` (streaming
    /// semantics: a non-finite value fails the op but keeps the finite
    /// prefix before it).
    Extend {
        /// Algorithm index.
        alg: usize,
        /// The measurements, in order.
        values: Vec<f64>,
    },
    /// Ingest a wave of measurements for algorithm `alg` **all or
    /// nothing**: the wave is validated before anything mutates, so a
    /// non-finite value anywhere rejects the whole op and leaves the
    /// session untouched (the transactional contract remote tenants
    /// usually want — no guessing which prefix landed).
    ExtendAll {
        /// Algorithm index.
        alg: usize,
        /// The measurements, in order.
        values: Vec<f64>,
    },
    /// Run one scored wave over the session's current samples.
    Score,
    /// Serialize the session into a checkpoint (see [`crate::snapshot`]).
    Snapshot,
    /// Close the session and free its slot.
    Close,
}

/// What one scored wave produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveOutcome {
    /// The wave's score table.
    pub table: ScoreTable,
    /// The wave's final clustering.
    pub clustering: Clustering,
    /// Whether the session's criterion has been met.
    pub converged: bool,
    /// Scored waves so far (including this one).
    pub waves: usize,
    /// Consecutive stable waves so far.
    pub stable_run: usize,
}

/// The successful result of one executed [`SessionOp`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome {
    /// A `Push`/`Extend`/`ExtendAll` was applied.
    Ingested,
    /// A `Score` ran (or replayed the previous table when no evidence
    /// arrived since the last wave — see
    /// [`ClusterSession::score`](relperf_core::session::ClusterSession::score)).
    Scored(WaveOutcome),
    /// A `Snapshot` serialized the session.
    Snapshot(Vec<u8>),
    /// A `Close` removed the session.
    Closed,
}

/// The response to one submitted op, delivered by
/// [`SessionService::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpResponse {
    /// The session the op addressed.
    pub key: SessionKey,
    /// The op's admission ticket (as returned by
    /// [`SessionService::submit`]).
    pub seq: u64,
    /// What happened.
    pub result: Result<OpOutcome, ServiceError>,
}

/// Capacity bounds enforced by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLimits {
    /// Hosted sessions per shard; the LRU idle session is spilled (or,
    /// with spilling disabled, evicted) to admit a new one beyond this.
    pub sessions_per_shard: usize,
    /// Queued ops per tenant across all shards (in-flight cap).
    pub tenant_in_flight: usize,
    /// Queued ops per shard (queue-depth backpressure).
    pub shard_queue_depth: usize,
    /// Spilled session snapshots kept per shard (see the [module
    /// docs](self)). `0` disables snapshot-on-evict: over-capacity
    /// inserts drop the LRU idle session for good.
    pub spill_per_shard: usize,
    /// Service-wide load-shedding watermark: once `ops_admitted -
    /// ops_executed` would exceed this, new ops are rejected with
    /// [`ServiceError::Overloaded`] until the scheduler catches up.
    pub max_backlog: usize,
}

impl Default for ServiceLimits {
    /// Generous defaults for library use; services facing real tenants
    /// should size these to their memory budget.
    fn default() -> Self {
        ServiceLimits {
            sessions_per_shard: 1024,
            tenant_in_flight: 4096,
            shard_queue_depth: 65536,
            spill_per_shard: 4096,
            max_backlog: 1 << 20,
        }
    }
}

/// A cheap observable summary of one hosted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Number of algorithms `p`.
    pub algorithms: usize,
    /// Measurements ingested across all algorithms.
    pub total_measurements: usize,
    /// Scored waves so far.
    pub waves: usize,
    /// Whether the convergence criterion has been met.
    pub converged: bool,
    /// Ops currently queued against this session.
    pub pending: usize,
    /// Whether the session currently lives in the spill store (as
    /// snapshot bytes) rather than in memory. A spilled session is still
    /// fully addressable — its next op rehydrates it.
    pub spilled: bool,
}

/// Shares one comparator instance across every hosted session: all three
/// comparator traits take `&self`, so an [`Arc`] delegates transparently
/// (sessions move between scheduler workers; the comparator itself is
/// `Sync` and never cloned).
#[derive(Debug)]
pub struct SharedComparator<C>(pub(crate) Arc<C>);

impl<C> Clone for SharedComparator<C> {
    fn clone(&self) -> Self {
        SharedComparator(Arc::clone(&self.0))
    }
}

impl<C: ThreeWayComparator> ThreeWayComparator for SharedComparator<C> {
    fn compare(&self, a: &Sample, b: &Sample) -> Outcome {
        self.0.compare(a, b)
    }
}

impl<C: SeededThreeWayComparator> SeededThreeWayComparator for SharedComparator<C> {
    fn compare_seeded(&self, a: &Sample, b: &Sample, stream: u64) -> Outcome {
        self.0.compare_seeded(a, b, stream)
    }
}

impl<C: ScratchThreeWayComparator> ScratchThreeWayComparator for SharedComparator<C> {
    type Scratch = C::Scratch;

    fn new_scratch(&self) -> C::Scratch {
        self.0.new_scratch()
    }

    fn compare_seeded_scratch(
        &self,
        scratch: &mut C::Scratch,
        a: &Sample,
        b: &Sample,
        stream: u64,
    ) -> Outcome {
        self.0.compare_seeded_scratch(scratch, a, b, stream)
    }
}

/// A hosted session plus its registry bookkeeping.
struct Hosted<C: ScratchThreeWayComparator + Send + Sync> {
    /// `None` while a running batch has the session checked out. The
    /// entry itself stays in the map, so admission keeps seeing the
    /// session as alive: `create_session` on the key still reports
    /// `SessionExists`, and `submit` keeps enqueuing (the ops run in the
    /// next batch).
    session: Option<ClusterSession<SharedComparator<C>>>,
    /// Summary cached at insert/check-in so admission validation and
    /// status reads stay answerable while the session is checked out.
    algorithms: usize,
    total_measurements: usize,
    waves: usize,
    converged: bool,
    /// Logical time of the last touch (submit or execution) — the LRU
    /// eviction key.
    last_used: u64,
    /// Ops queued but not yet executed; only idle (`pending == 0`)
    /// sessions are evictable.
    pending: usize,
    /// Highest op seq a batch has applied to this session — the durable
    /// low-water mark carried into checkpoints so journal replay can
    /// deduplicate (`None` until the first batch touches the session).
    last_applied: Option<u64>,
}

impl<C: ScratchThreeWayComparator + Send + Sync> Hosted<C> {
    fn new(session: ClusterSession<SharedComparator<C>>, tick: u64) -> Self {
        let mut hosted = Hosted {
            algorithms: session.num_algorithms(),
            total_measurements: 0,
            waves: 0,
            converged: false,
            last_used: tick,
            pending: 0,
            last_applied: None,
            session: None,
        };
        hosted.refresh(&session);
        hosted.session = Some(session);
        hosted
    }

    /// Re-caches the observable summary from the live session.
    fn refresh(&mut self, session: &ClusterSession<SharedComparator<C>>) {
        self.total_measurements = session.total_measurements();
        self.waves = session.waves();
        self.converged = session.converged();
    }
}

/// One queued op with its ordering ticket.
struct QueuedOp {
    key: SessionKey,
    seq: u64,
    op: SessionOp,
}

/// A session parked in the spill store: its snapshot bytes plus the
/// cached summary so status reads stay answerable without decoding.
struct Spilled {
    bytes: Vec<u8>,
    algorithms: usize,
    total_measurements: usize,
    waves: usize,
    converged: bool,
    /// Carried from the resident entry so rehydration order follows true
    /// recency, and the spill store's own LRU drop is well-defined.
    last_used: u64,
    /// Carried applied-seq low-water mark (see [`Hosted::last_applied`]).
    last_applied: Option<u64>,
}

/// One shard: a slice of the session map, the spill store, and the
/// shard's request queue, guarded by a single mutex (lock per shard,
/// never a global lock).
struct Shard<C: ScratchThreeWayComparator + Send + Sync> {
    sessions: HashMap<SessionKey, Hosted<C>>,
    spilled: HashMap<SessionKey, Spilled>,
    queue: Vec<QueuedOp>,
    /// The shard's durable op journal; `None` on an unjournaled service.
    journal: Option<ShardJournal>,
}

/// One shard's journal: the store plus group-commit bookkeeping, living
/// inside the shard mutex so the durable order equals admission order.
struct ShardJournal {
    store: Box<dyn JournalStore>,
    config: JournalConfig,
    /// Journaled ops appended since the last sync (group commit counter).
    unsynced: usize,
    /// Journaled ops since the last checkpoint (auto-compaction counter).
    since_checkpoint: usize,
    /// Set on the first append/sync failure: the journal can no longer
    /// vouch for durability, so journaled admissions are rejected with
    /// [`JournalIoError::Sealed`] until the service is recovered.
    sealed: bool,
}

impl ShardJournal {
    fn new(store: Box<dyn JournalStore>, config: JournalConfig) -> Self {
        ShardJournal {
            store,
            config,
            unsynced: 0,
            since_checkpoint: 0,
            sealed: false,
        }
    }

    /// Appends one framed record covering `ops` journaled ops, syncing at
    /// the group-commit boundary. Any store failure seals the journal.
    fn append(&mut self, bytes: &[u8], ops: usize, stats: &StatCounters) -> Result<(), ServiceError> {
        if self.sealed {
            return Err(ServiceError::Journal(JournalIoError::Sealed));
        }
        if let Err(e) = self.store.append(bytes) {
            self.sealed = true;
            return Err(ServiceError::Journal(e));
        }
        StatCounters::bump(&stats.journal_appends);
        self.unsynced += ops;
        self.since_checkpoint += ops;
        if self.unsynced >= self.config.group_commit.max(1) {
            self.sync(stats)?;
        }
        Ok(())
    }

    /// Forces the unsynced tail durable (end of a group-commit window).
    fn sync(&mut self, stats: &StatCounters) -> Result<(), ServiceError> {
        if self.sealed {
            return Err(ServiceError::Journal(JournalIoError::Sealed));
        }
        if let Err(e) = self.store.sync() {
            self.sealed = true;
            return Err(ServiceError::Journal(e));
        }
        StatCounters::bump(&stats.journal_syncs);
        self.unsynced = 0;
        Ok(())
    }
}

/// One scheduler work item: a session's checked-out state plus its op
/// group for this batch.
struct Job<C: ScratchThreeWayComparator + Send + Sync> {
    key: SessionKey,
    /// The checked-out session; `None` when the registry entry was gone
    /// (evicted between submit and batch), or after a `Close` executed.
    session: Option<ClusterSession<SharedComparator<C>>>,
    /// Whether checkout found a live session — distinguishes "closed by
    /// this batch" from "was already gone" at check-in (a new session may
    /// have been created under the same key in the meantime and must not
    /// be touched).
    live: bool,
    ops: Vec<(u64, SessionOp)>,
}

/// The multi-tenant session service (see the [module docs](self)).
pub struct SessionService<C: ScratchThreeWayComparator + Send + Sync> {
    comparator: Arc<C>,
    shards: Box<[Mutex<Shard<C>>]>,
    limits: ServiceLimits,
    /// How scored waves of *independent sessions* fan out in `run_batch`.
    scheduler: Parallelism,
    /// Queued ops per tenant (the in-flight admission counter).
    tenants: Mutex<HashMap<u64, usize>>,
    /// Global monotone ticket counter; per-tenant tickets are monotone
    /// because each tenant submits its own ops in order.
    seq: AtomicU64,
    /// Logical clock for LRU bookkeeping.
    clock: AtomicU64,
    stats: StatCounters,
}

impl<C: ScratchThreeWayComparator + Send + Sync> SessionService<C> {
    /// A service sharing `comparator` across all sessions, with `shards`
    /// registry shards and the given scheduler parallelism and limits.
    ///
    /// # Panics
    /// Panics when `shards == 0` or a limit is zero.
    pub fn new(comparator: C, shards: usize, scheduler: Parallelism, limits: ServiceLimits) -> Self {
        Self::from_arc(Arc::new(comparator), shards, scheduler, limits)
    }

    pub(crate) fn from_arc(
        comparator: Arc<C>,
        shards: usize,
        scheduler: Parallelism,
        limits: ServiceLimits,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(limits.sessions_per_shard > 0, "zero-capacity shards");
        assert!(limits.tenant_in_flight > 0, "zero tenant in-flight cap");
        assert!(limits.shard_queue_depth > 0, "zero queue depth");
        SessionService {
            comparator,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        sessions: HashMap::new(),
                        spilled: HashMap::new(),
                        queue: Vec::new(),
                        journal: None,
                    })
                })
                .collect(),
            limits,
            scheduler,
            tenants: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            stats: StatCounters::default(),
        }
    }

    /// A **journaled** service: one [`JournalStore`] per shard (the store
    /// count *is* the shard count), every admission made durable before
    /// it is enqueued. The stores are initialized with a fresh empty
    /// checkpoint — this constructor starts a new durable history; use
    /// [`recover`](Self::recover) to resume an existing one.
    ///
    /// # Panics
    /// Panics when `stores` is empty or a limit is zero (same contract as
    /// [`new`](Self::new)).
    pub fn with_journal(
        comparator: C,
        scheduler: Parallelism,
        limits: ServiceLimits,
        config: JournalConfig,
        stores: Vec<Box<dyn JournalStore>>,
    ) -> Result<Self, ServiceError> {
        assert!(!stores.is_empty(), "need at least one journal store");
        let service = Self::from_arc(Arc::new(comparator), stores.len(), scheduler, limits);
        for (idx, store) in stores.into_iter().enumerate() {
            service.shard(idx).journal = Some(ShardJournal::new(store, config));
        }
        // Install empty checkpoints so every store holds a parseable
        // durable history from the first moment.
        service.compact_all()?;
        Ok(service)
    }

    /// The shard hosting `key` — a pure function of the key, so placement
    /// is stable across runs and processes.
    fn shard_of(&self, key: SessionKey) -> usize {
        (stream_seed(key.tenant, key.session) % self.shards.len() as u64) as usize
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard<C>> {
        self.shards[idx].lock().expect("shard poisoned")
    }

    /// Opens a fresh session. All spec validation is typed — a bad tenant
    /// spec is rejected, never a panic (the criterion goes through
    /// [`ConvergenceCriterion::try_validate`]).
    pub fn create_session(
        &self,
        tenant: u64,
        session: u64,
        spec: SessionSpec,
    ) -> Result<(), ServiceError> {
        StatCounters::bump(&self.stats.requests);
        self.admit(tenant, session, spec)
            .inspect_err(|_| StatCounters::bump(&self.stats.rejections))
    }

    fn admit(&self, tenant: u64, session: u64, spec: SessionSpec) -> Result<(), ServiceError> {
        if spec.algorithms == 0 {
            return Err(ServiceError::NoAlgorithms);
        }
        if spec.config.repetitions == 0 {
            return Err(ServiceError::NoRepetitions);
        }
        spec.criterion.try_validate()?;
        let session_obj = ClusterSession::with_criterion(
            spec.algorithms,
            SharedComparator(Arc::clone(&self.comparator)),
            spec.config,
            spec.seed,
            spec.criterion,
        );
        self.insert(
            SessionKey { tenant, session },
            session_obj,
            Some(JournalRecord::Create { tenant, session, spec }),
        )
    }

    /// Rebuilds a session from checkpoint bytes produced by a `Snapshot`
    /// op (or [`snapshot::encode`]). The restored session continues
    /// wave-for-wave identically to one that never stopped; any carried
    /// RNG states in the snapshot are ignored here (they belong to the
    /// campaign layer, see [`crate::campaign`]).
    pub fn restore_session(
        &self,
        tenant: u64,
        session: u64,
        bytes: &[u8],
    ) -> Result<(), ServiceError> {
        StatCounters::bump(&self.stats.requests);
        snapshot::decode(bytes)
            .map_err(ServiceError::from)
            .and_then(|snap| self.readmit(tenant, session, snap))
            .inspect_err(|_| StatCounters::bump(&self.stats.rejections))
    }

    /// [`restore_session`](SessionService::restore_session) for an
    /// already-decoded snapshot — callers that inspected the snapshot
    /// first (e.g. [`ServiceCampaign::resume`](crate::campaign::ServiceCampaign::resume),
    /// which needs the RNG states) avoid decoding the bytes twice.
    pub fn restore_snapshot(
        &self,
        tenant: u64,
        session: u64,
        snap: SessionSnapshot,
    ) -> Result<(), ServiceError> {
        StatCounters::bump(&self.stats.requests);
        self.readmit(tenant, session, snap)
            .inspect_err(|_| StatCounters::bump(&self.stats.rejections))
    }

    fn readmit(
        &self,
        tenant: u64,
        session: u64,
        snap: SessionSnapshot,
    ) -> Result<(), ServiceError> {
        // The codec guarantees these hold for decoded bytes, but
        // `restore_snapshot` accepts caller-built values — re-check them
        // typed so the session constructors below can never panic on
        // tenant input.
        if snap.state.samples.is_empty() {
            return Err(ServiceError::NoAlgorithms);
        }
        if snap.config.repetitions == 0 {
            return Err(ServiceError::NoRepetitions);
        }
        snap.criterion.try_validate()?;
        let session_obj = ClusterSession::try_restore(
            SharedComparator(Arc::clone(&self.comparator)),
            snap.config,
            snap.seed,
            snap.criterion,
            snap.state,
        )
        .map_err(|what| ServiceError::BadSnapshot(SnapshotError::Malformed(what)))?;
        // Journal the *validated* session's own export, not the caller's
        // bytes: `try_restore` may still reject caller-built values the
        // checks above cannot see, and replaying the record must decode
        // back into exactly this state (carried RNG states are a campaign
        // -layer concern and deliberately not journaled).
        let record = JournalRecord::Restore {
            tenant,
            session,
            snapshot: snapshot::encode(&SessionSnapshot {
                config: session_obj.config(),
                seed: session_obj.seed(),
                criterion: session_obj.criterion(),
                state: session_obj.export_state(),
                rng_states: Vec::new(),
            }),
        };
        self.insert(SessionKey { tenant, session }, session_obj, Some(record))
    }

    /// Registers a session, spilling (or, with spilling disabled,
    /// evicting) the LRU idle resident when the shard is at capacity.
    /// Checked-out and pending-op sessions are never displaced.
    ///
    /// On a journaled service, `record` is appended under the same shard
    /// lock as the insert — so the durable order equals the registry
    /// order — and a failed append undoes the insert: a create/restore
    /// the journal cannot vouch for is rejected, not half-done.
    fn insert(
        &self,
        key: SessionKey,
        session: ClusterSession<SharedComparator<C>>,
        record: Option<JournalRecord>,
    ) -> Result<(), ServiceError> {
        let idx = self.shard_of(key);
        let tick = self.tick();
        let mut guard = self.shard(idx);
        if guard.journal.as_ref().is_some_and(|j| j.sealed) {
            return Err(ServiceError::Journal(JournalIoError::Sealed));
        }
        self.insert_locked(&mut guard, idx, key, session, tick)?;
        let shard = &mut *guard;
        if let (Some(record), Some(j)) = (record, shard.journal.as_mut()) {
            let bytes = journal::encode_record(&record);
            if let Err(e) = j.append(&bytes, 1, &self.stats) {
                shard.sessions.remove(&key);
                return Err(e);
            }
        }
        Ok(())
    }

    /// [`insert`](Self::insert) against an already-locked shard — shared
    /// with the rehydration path, which must make room while holding the
    /// shard lock (re-locking would deadlock).
    fn insert_locked(
        &self,
        shard: &mut Shard<C>,
        idx: usize,
        key: SessionKey,
        session: ClusterSession<SharedComparator<C>>,
        tick: u64,
    ) -> Result<(), ServiceError> {
        if shard.sessions.contains_key(&key) || shard.spilled.contains_key(&key) {
            return Err(ServiceError::SessionExists {
                tenant: key.tenant,
                session: key.session,
            });
        }
        if shard.sessions.len() >= self.limits.sessions_per_shard {
            self.make_room(shard, idx)?;
        }
        shard.sessions.insert(key, Hosted::new(session, tick));
        Ok(())
    }

    /// Frees one residency slot in `shard`: the LRU idle resident is
    /// serialized into the spill store, or dropped for good when spilling
    /// is disabled. Fails typed with `ShardFull` when every resident is
    /// checked out or has pending ops.
    fn make_room(&self, shard: &mut Shard<C>, idx: usize) -> Result<(), ServiceError> {
        let victim = shard
            .sessions
            .iter()
            .filter(|(_, h)| h.pending == 0 && h.session.is_some())
            .min_by_key(|(k, h)| (h.last_used, **k))
            .map(|(k, _)| *k);
        let Some(v) = victim else {
            return Err(ServiceError::ShardFull {
                shard: idx,
                capacity: self.limits.sessions_per_shard,
            });
        };
        let hosted = shard.sessions.remove(&v).expect("victim is resident");
        if self.limits.spill_per_shard == 0 {
            StatCounters::bump(&self.stats.evictions);
            return Ok(());
        }
        let session = hosted.session.expect("victim is idle (checked in)");
        let snap = SessionSnapshot {
            config: session.config(),
            seed: session.seed(),
            criterion: session.criterion(),
            state: session.export_state(),
            rng_states: Vec::new(),
        };
        shard.spilled.insert(
            v,
            Spilled {
                bytes: snapshot::encode(&snap),
                algorithms: hosted.algorithms,
                total_measurements: hosted.total_measurements,
                waves: hosted.waves,
                converged: hosted.converged,
                last_used: hosted.last_used,
                last_applied: hosted.last_applied,
            },
        );
        StatCounters::bump(&self.stats.spills);
        // The spill store is itself bounded; beyond the cap the oldest
        // snapshot is dropped for good (a hard eviction).
        while shard.spilled.len() > self.limits.spill_per_shard {
            let oldest = shard
                .spilled
                .iter()
                .min_by_key(|(k, s)| (s.last_used, **k))
                .map(|(k, _)| *k)
                .expect("spill store is non-empty");
            shard.spilled.remove(&oldest);
            StatCounters::bump(&self.stats.evictions);
        }
        Ok(())
    }

    /// Rebuilds a spilled session in place (shard lock held), making room
    /// by spilling someone else if necessary. On `ShardFull` the snapshot
    /// goes back into the spill store untouched, so the session survives
    /// the failed touch and the caller can retry after the backlog drains.
    fn rehydrate_locked(
        &self,
        shard: &mut Shard<C>,
        idx: usize,
        key: SessionKey,
        tick: u64,
    ) -> Result<(), ServiceError> {
        let spilled = shard
            .spilled
            .remove(&key)
            .expect("caller checked the spill store");
        let rebuilt = snapshot::decode(&spilled.bytes)
            .map_err(ServiceError::from)
            .and_then(|snap| {
                ClusterSession::try_restore(
                    SharedComparator(Arc::clone(&self.comparator)),
                    snap.config,
                    snap.seed,
                    snap.criterion,
                    snap.state,
                )
                .map_err(|what| ServiceError::BadSnapshot(SnapshotError::Malformed(what)))
            });
        let session = match rebuilt {
            Ok(session) => session,
            Err(e) => {
                // Unreachable for bytes the spill path itself encoded,
                // but stay total: the entry is dropped and the error
                // surfaces typed.
                StatCounters::bump(&self.stats.evictions);
                return Err(e);
            }
        };
        if let Err(e) = self.insert_locked(shard, idx, key, session, tick) {
            shard.spilled.insert(key, spilled);
            return Err(e);
        }
        if let Some(h) = shard.sessions.get_mut(&key) {
            h.last_applied = spilled.last_applied;
        }
        StatCounters::bump(&self.stats.rehydrations);
        Ok(())
    }

    /// Enqueues one op against a hosted session, returning its ticket.
    /// The op executes at the next [`run_batch`](SessionService::run_batch);
    /// rejection (unknown session, in-flight cap, queue depth, bad
    /// algorithm index) is immediate and typed — the caller is never
    /// blocked.
    pub fn submit(&self, tenant: u64, session: u64, op: SessionOp) -> Result<u64, ServiceError> {
        let seqs = self.submit_all(tenant, session, vec![op])?;
        Ok(seqs[0])
    }

    /// Atomically enqueues a group of ops against one session: either
    /// every op is admitted (returning their tickets, in order) or none
    /// is. This is the transactional form campaign drivers need — a
    /// mid-group `TenantBusy`/`QueueFull` cannot leave half a wave queued.
    pub fn submit_all(
        &self,
        tenant: u64,
        session: u64,
        ops: Vec<SessionOp>,
    ) -> Result<Vec<u64>, ServiceError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let n = ops.len() as u64;
        self.stats.requests.fetch_add(n, Ordering::Relaxed);
        self.stats.ops_submitted.fetch_add(n, Ordering::Relaxed);
        self.enqueue_all(tenant, session, ops)
            .inspect(|_| {
                self.stats.ops_admitted.fetch_add(n, Ordering::Relaxed);
            })
            .inspect_err(|_| {
                self.stats.rejections.fetch_add(n, Ordering::Relaxed);
                self.stats.ops_rejected.fetch_add(n, Ordering::Relaxed);
            })
    }

    fn enqueue_all(
        &self,
        tenant: u64,
        session: u64,
        ops: Vec<SessionOp>,
    ) -> Result<Vec<u64>, ServiceError> {
        let key = SessionKey { tenant, session };
        let n = ops.len();
        // Load shedding first — one relaxed read, no lock. The backlog is
        // a cross-counter snapshot (see `stats`), so the watermark is
        // approximate under concurrency, which is exactly what a shedder
        // wants: cheap, monotone-ish, and typed.
        let backlog = self.stats.backlog();
        if backlog.saturating_add(n as u64) > self.limits.max_backlog as u64 {
            self.stats.shed.fetch_add(n as u64, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                backlog: backlog as usize,
                cap: self.limits.max_backlog,
            });
        }
        // Reserve the in-flight slots next (tenant lock), then validate
        // under the shard lock; the two locks are never held together.
        {
            let mut tenants = self.tenants.lock().expect("tenant map poisoned");
            let in_flight = tenants.entry(tenant).or_insert(0);
            if *in_flight + n > self.limits.tenant_in_flight {
                return Err(ServiceError::TenantBusy {
                    tenant,
                    in_flight: *in_flight,
                    cap: self.limits.tenant_in_flight,
                });
            }
            *in_flight += n;
        }
        let idx = self.shard_of(key);
        let tick = self.tick();
        let result = 'admit: {
            let mut guard = self.shard(idx);
            let shard = &mut *guard;
            if shard.queue.len() + n > self.limits.shard_queue_depth {
                break 'admit Err(ServiceError::QueueFull {
                    shard: idx,
                    depth: shard.queue.len(),
                    cap: self.limits.shard_queue_depth,
                });
            }
            if shard.journal.as_ref().is_some_and(|j| j.sealed) {
                break 'admit Err(ServiceError::Journal(JournalIoError::Sealed));
            }
            // Transparent rehydration: a touch on a spilled session pulls
            // it back into residency before the op is enqueued. Failure
            // (no idle victim to displace) is typed and leaves the
            // snapshot parked.
            if !shard.sessions.contains_key(&key) && shard.spilled.contains_key(&key) {
                if let Err(e) = self.rehydrate_locked(shard, idx, key, tick) {
                    break 'admit Err(e);
                }
            }
            {
                let Shard { sessions, queue, journal, .. } = shard;
                match sessions.get_mut(&key) {
                    None => Err(ServiceError::SessionUnknown { tenant, session }),
                    Some(hosted) => {
                        let p = hosted.algorithms;
                        let bad_alg = ops.iter().find_map(|op| match op {
                            SessionOp::Push { alg, .. }
                            | SessionOp::Extend { alg, .. }
                            | SessionOp::ExtendAll { alg, .. }
                                if *alg >= p =>
                            {
                                Some(*alg)
                            }
                            _ => None,
                        });
                        match bad_alg {
                            Some(alg) => Err(ServiceError::AlgorithmOutOfRange { alg, p }),
                            None => {
                                let first = self.seq.fetch_add(n as u64, Ordering::Relaxed);
                                // Durability before visibility: the whole
                                // group becomes one journal record, under
                                // this shard lock, before anything is
                                // enqueued — a failed append admits
                                // nothing (the seq tickets are burned,
                                // which is harmless: they are monotone,
                                // never dense).
                                if let Some(j) = journal.as_mut() {
                                    let bytes = journal::encode_ops_record(
                                        tenant, session, first, &ops,
                                    );
                                    if let Err(e) = j.append(&bytes, n, &self.stats) {
                                        break 'admit Err(e);
                                    }
                                }
                                hosted.pending += n;
                                hosted.last_used = tick;
                                let seqs: Vec<u64> = (0..n as u64).map(|i| first + i).collect();
                                for (seq, op) in seqs.iter().zip(ops) {
                                    queue.push(QueuedOp { key, seq: *seq, op });
                                }
                                Ok(seqs)
                            }
                        }
                    }
                }
            }
        };
        if result.is_err() {
            // Give the reserved in-flight slots back on rejection.
            self.release_in_flight(tenant, n);
        }
        result
    }

    /// Returns `n` in-flight slots to `tenant`, dropping the map entry
    /// when its count reaches zero — so a client probing arbitrary tenant
    /// ids cannot grow the admission map without bound.
    fn release_in_flight(&self, tenant: u64, n: usize) {
        let mut tenants = self.tenants.lock().expect("tenant map poisoned");
        if let Some(in_flight) = tenants.get_mut(&tenant) {
            *in_flight = in_flight.saturating_sub(n);
            if *in_flight == 0 {
                tenants.remove(&tenant);
            }
        }
    }

    /// Drains every shard queue and executes one scheduler batch:
    /// ops ordered by `(tenant, seq)`, grouped per session, each session's
    /// group applied sequentially while independent sessions' waves fan
    /// out across threads. Responses come back sorted by `(tenant, seq)`.
    ///
    /// Determinism: a session's responses depend only on its own op
    /// sequence (and its spec/seed), never on batch boundaries, shard
    /// count, thread count, or what other tenants did — bit-identical to
    /// driving a private `ClusterSession` with the same calls.
    ///
    /// Concurrency: sessions stay registered while a batch executes them
    /// (marked checked-out), so concurrent `create_session` on a live key
    /// still reports `SessionExists` and concurrent `submit`s keep
    /// enqueuing for the next batch. If two `run_batch` calls race, ops
    /// addressing a session the other batch holds are simply carried over
    /// to the next batch (their responses arrive there) — never lost,
    /// never run out of order.
    pub fn run_batch(&self) -> Vec<OpResponse> {
        self.run_shard_batch(0..self.shards.len())
    }

    /// [`run_batch`](Self::run_batch) over a subset of shards — the
    /// primitive the background scheduler builds on: each scheduler
    /// thread drains only the shards it owns, so one slow session delays
    /// its own shard's batch, never the whole service's.
    ///
    /// Determinism is unaffected: a session lives entirely in one shard,
    /// so its ops are always drained together and in `(tenant, seq)`
    /// order, whatever partition of shards the callers use.
    ///
    /// An all-empty subset returns immediately without counting a batch,
    /// so a polling scheduler does not inflate `batches` while idle.
    ///
    /// # Panics
    /// Panics when a shard index is out of range
    /// (`>= `[`num_shards`](Self::num_shards)).
    pub fn run_shard_batch(&self, shards: impl IntoIterator<Item = usize>) -> Vec<OpResponse> {
        let shard_indices: Vec<usize> = shards.into_iter().collect();
        let mut entries: Vec<QueuedOp> = Vec::new();
        for &idx in &shard_indices {
            let mut shard = self.shard(idx);
            if !shard.queue.is_empty() {
                entries.append(&mut shard.queue);
            }
        }
        if entries.is_empty() {
            return Vec::new();
        }
        StatCounters::bump(&self.stats.batches);
        entries.sort_by_key(|e| (e.key.tenant, e.seq));

        // Group per session, preserving the global (tenant, seq) order
        // within each group.
        let mut group_of: HashMap<SessionKey, usize> = HashMap::new();
        let mut groups: Vec<(SessionKey, Vec<(u64, SessionOp)>)> = Vec::new();
        for e in entries {
            let gi = *group_of.entry(e.key).or_insert_with(|| {
                groups.push((e.key, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push((e.seq, e.op));
        }

        // Check each involved session out of its shard (the entry stays,
        // marked checked-out). A missing entry means the session was
        // evicted since submit — its ops fail typed. An entry already
        // checked out by a concurrently running batch gets its ops pushed
        // back for the next batch.
        let mut jobs: Vec<Mutex<Job<C>>> = Vec::new();
        for (key, ops) in groups {
            let mut shard = self.shard(self.shard_of(key));
            match shard.sessions.get_mut(&key) {
                Some(hosted) => match hosted.session.take() {
                    Some(session) => jobs.push(Mutex::new(Job {
                        key,
                        session: Some(session),
                        live: true,
                        ops,
                    })),
                    None => shard
                        .queue
                        .extend(ops.into_iter().map(|(seq, op)| QueuedOp { key, seq, op })),
                },
                None => jobs.push(Mutex::new(Job {
                    key,
                    session: None,
                    live: false,
                    ops,
                })),
            }
        }

        // Fan independent sessions across workers. Each job is locked by
        // exactly one worker (uncontended — the Mutex only converts the
        // shared borrow into the mutable one the session needs).
        let stats = &self.stats;
        let per_job: Vec<Vec<OpResponse>> = relperf_parallel::parallel_map_indexed_with(
            jobs.len(),
            self.scheduler,
            || (),
            |(), i| {
                let mut job = jobs[i].lock().expect("job poisoned");
                let Job { key, session, ops, .. } = &mut *job;
                run_session_ops(*key, session, std::mem::take(ops), stats)
            },
        );

        // Check sessions back in and release bookkeeping.
        let tick = self.tick();
        for (job, responses) in jobs.into_iter().zip(&per_job) {
            let job = job.into_inner().expect("job poisoned");
            if !job.live {
                // Nothing was checked out; if a *new* session has been
                // created under this key meanwhile, it is not ours to
                // touch.
                continue;
            }
            let mut shard = self.shard(self.shard_of(job.key));
            if let Some(hosted) = shard.sessions.get_mut(&job.key) {
                hosted.pending = hosted.pending.saturating_sub(responses.len());
                hosted.last_used = tick;
                // Advance the durable low-water mark over *every*
                // responded seq, errored ops included — an errored
                // `Extend` still ingests the values before the bad one,
                // and replay executes it identically, so "applied" must
                // mean "executed", not "succeeded".
                if let Some(max_seq) = responses.iter().map(|r| r.seq).max() {
                    hosted.last_applied =
                        Some(hosted.last_applied.map_or(max_seq, |l| l.max(max_seq)));
                }
                match job.session {
                    Some(session) => {
                        hosted.refresh(&session);
                        hosted.session = Some(session);
                    }
                    // Closed by this batch: drop the registry entry.
                    None => {
                        shard.sessions.remove(&job.key);
                    }
                }
            }
        }
        let mut responses: Vec<OpResponse> = per_job.into_iter().flatten().collect();
        let mut executed_per_tenant: HashMap<u64, usize> = HashMap::new();
        for r in &responses {
            *executed_per_tenant.entry(r.key.tenant).or_insert(0) += 1;
        }
        for (tenant, n) in executed_per_tenant {
            self.release_in_flight(tenant, n);
        }
        self.stats
            .ops_executed
            .fetch_add(responses.len() as u64, Ordering::Relaxed);
        // Auto-compaction rides on the batch that crossed the threshold:
        // the journal suffix a recovery would replay stays bounded.
        for &idx in &shard_indices {
            self.maybe_compact(idx);
        }
        responses.sort_by_key(|r| (r.key.tenant, r.seq));
        responses
    }

    /// Compacts `idx` if its journal crossed the auto-compaction
    /// threshold. Best-effort: a failed install seals the shard journal
    /// and surfaces on the next journaled admission.
    fn maybe_compact(&self, idx: usize) {
        let mut guard = self.shard(idx);
        let due = guard.journal.as_ref().is_some_and(|j| {
            !j.sealed && j.config.compact_every > 0 && j.since_checkpoint >= j.config.compact_every
        });
        if due {
            let _ = self.compact_locked(&mut guard);
        }
    }

    /// A cheap status read of one hosted session (served from the cached
    /// summary, so it stays answerable while a batch has the session
    /// checked out — and while the session sits in the spill store).
    pub fn session_status(&self, tenant: u64, session: u64) -> Option<SessionStatus> {
        let key = SessionKey { tenant, session };
        let shard = self.shard(self.shard_of(key));
        if let Some(h) = shard.sessions.get(&key) {
            return Some(SessionStatus {
                algorithms: h.algorithms,
                total_measurements: h.total_measurements,
                waves: h.waves,
                converged: h.converged,
                pending: h.pending,
                spilled: false,
            });
        }
        shard.spilled.get(&key).map(|s| SessionStatus {
            algorithms: s.algorithms,
            total_measurements: s.total_measurements,
            waves: s.waves,
            converged: s.converged,
            pending: 0,
            spilled: true,
        })
    }

    /// Number of sessions currently resident in memory across all shards
    /// (spilled sessions not included — see
    /// [`num_spilled`](Self::num_spilled)).
    pub fn num_sessions(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).sessions.len())
            .sum()
    }

    /// Number of sessions currently parked in the spill stores as
    /// snapshot bytes.
    pub fn num_spilled(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).spilled.len())
            .sum()
    }

    /// Ops currently sitting in shard queues — admitted but not yet
    /// drained by a batch.
    pub fn queued_ops(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).queue.len())
            .sum()
    }

    /// Number of registry shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index hosting `(tenant, session)` — a pure function of
    /// the key, exposed so schedulers partitioning shards across threads
    /// (see [`crate::runtime`]) can route wake-ups.
    pub fn shard_index(&self, tenant: u64, session: u64) -> usize {
        self.shard_of(SessionKey { tenant, session })
    }

    /// The service's capacity limits.
    pub fn limits(&self) -> ServiceLimits {
        self.limits
    }

    /// A point-in-time reading of the load counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// The live counters (replication and recovery paths bump them from
    /// outside the service's own methods).
    pub(crate) fn stat_counters(&self) -> &StatCounters {
        &self.stats
    }

    /// Resumes the global seq counter past every already-issued ticket
    /// (recovery / follower promotion).
    pub(crate) fn resume_seq(&self, next: u64) {
        self.seq.store(next, Ordering::Relaxed);
    }

    /// Attaches one journal per shard and installs fresh checkpoints —
    /// the `with_journal` tail shared with follower promotion, which
    /// builds the service first and makes it durable after.
    pub(crate) fn attach_journals(
        &self,
        config: JournalConfig,
        stores: Vec<Box<dyn JournalStore>>,
    ) -> Result<(), ServiceError> {
        assert_eq!(
            stores.len(),
            self.shards.len(),
            "one journal store per shard"
        );
        for (idx, store) in stores.into_iter().enumerate() {
            self.shard(idx).journal = Some(ShardJournal::new(store, config));
        }
        self.compact_all()?;
        Ok(())
    }

    /// Appends a divergence-detection
    /// [`Digest`](JournalRecord::Digest) record to every **quiesced**
    /// journaled shard (no checkouts, no pending ops, empty queue) and
    /// syncs it durable, returning how many shards emitted one. A
    /// replica replaying the stream reaches exactly the state the digest
    /// checksums, so the digest pins the whole replicated prefix;
    /// busy or sealed shards are skipped (the next quiesce catches up).
    ///
    /// The per-session checksum is FNV-1a 64 over the session's
    /// canonical snapshot-codec export with RNG streams excluded — the
    /// same bytes a spill or checkpoint would write, so resident and
    /// spilled sessions digest identically.
    pub fn emit_digests(&self) -> Result<usize, ServiceError> {
        let mut emitted = 0;
        for idx in 0..self.shards.len() {
            let mut guard = self.shard(idx);
            let shard = &mut *guard;
            let ready = shard.journal.as_ref().is_some_and(|j| !j.sealed)
                && shard.queue.is_empty()
                && shard
                    .sessions
                    .values()
                    .all(|h| h.session.is_some() && h.pending == 0);
            if !ready {
                continue;
            }
            let mut sessions: Vec<DigestSession> =
                Vec::with_capacity(shard.sessions.len() + shard.spilled.len());
            for (key, hosted) in &shard.sessions {
                let session = hosted.session.as_ref().expect("quiesced (checked above)");
                sessions.push(DigestSession {
                    tenant: key.tenant,
                    session: key.session,
                    last_applied: hosted.last_applied,
                    checksum: session_checksum(session),
                });
            }
            for (key, spilled) in &shard.spilled {
                sessions.push(DigestSession {
                    tenant: key.tenant,
                    session: key.session,
                    last_applied: spilled.last_applied,
                    checksum: fnv1a64(&spilled.bytes),
                });
            }
            sessions.sort_by_key(|s| (s.tenant, s.session));
            let bytes = journal::encode_record(&JournalRecord::Digest { sessions });
            let j = shard.journal.as_mut().expect("journaled (checked above)");
            j.append(&bytes, 0, &self.stats)?;
            // A digest is only useful once shipped; force it durable now
            // rather than waiting out the group-commit window.
            j.sync(&self.stats)?;
            StatCounters::bump(&self.stats.digests_emitted);
            emitted += 1;
        }
        Ok(emitted)
    }

    // -- durability ---------------------------------------------------------

    /// Installs a fresh checkpoint for shard `idx` and truncates its
    /// journal (compaction): the base becomes one
    /// [`Checkpoint`](JournalRecord::Checkpoint) over every resident and
    /// spilled session, and the journal restarts holding only the ops
    /// still queued (admitted, not yet executed). Returns `Ok(false)`
    /// without touching anything when the shard has no journal or a
    /// racing batch holds one of its sessions checked out (retry after
    /// the batch).
    ///
    /// # Panics
    /// Panics when `idx >= `[`num_shards`](Self::num_shards).
    pub fn compact_shard(&self, idx: usize) -> Result<bool, ServiceError> {
        let mut guard = self.shard(idx);
        self.compact_locked(&mut guard)
    }

    /// [`compact_shard`](Self::compact_shard) over every shard; returns
    /// how many shards installed a fresh checkpoint.
    pub fn compact_all(&self) -> Result<usize, ServiceError> {
        let mut compacted = 0;
        for idx in 0..self.shards.len() {
            if self.compact_shard(idx)? {
                compacted += 1;
            }
        }
        Ok(compacted)
    }

    /// Forces every shard journal's unsynced tail durable — the group
    /// commit boundary a graceful shutdown (or a paranoid caller) wants
    /// regardless of [`JournalConfig::group_commit`]. A no-op on an
    /// unjournaled service.
    pub fn flush_journals(&self) -> Result<(), ServiceError> {
        for idx in 0..self.shards.len() {
            let mut guard = self.shard(idx);
            if let Some(j) = guard.journal.as_mut() {
                if j.unsynced > 0 {
                    j.sync(&self.stats)?;
                }
            }
        }
        Ok(())
    }

    fn compact_locked(&self, shard: &mut Shard<C>) -> Result<bool, ServiceError> {
        if shard.journal.is_none() {
            return Ok(false);
        }
        if shard.journal.as_ref().is_some_and(|j| j.sealed) {
            return Err(ServiceError::Journal(JournalIoError::Sealed));
        }
        if shard.sessions.values().any(|h| h.session.is_none()) {
            // A racing batch holds a checkout; its check-in would not be
            // in the checkpoint. Skip — the next batch retries.
            return Ok(false);
        }
        // `seq_floor` is the next unissued ticket: every record this
        // checkpoint covers sits below it, so recovery resumes the
        // counter at or above the floor and never reuses a seq.
        let seq_floor = self.seq.load(Ordering::Relaxed);
        let mut sessions: Vec<CheckpointSession> =
            Vec::with_capacity(shard.sessions.len() + shard.spilled.len());
        for (key, hosted) in &shard.sessions {
            let session = hosted.session.as_ref().expect("no checkouts (checked above)");
            let snap = SessionSnapshot {
                config: session.config(),
                seed: session.seed(),
                criterion: session.criterion(),
                state: session.export_state(),
                rng_states: Vec::new(),
            };
            sessions.push(CheckpointSession {
                tenant: key.tenant,
                session: key.session,
                last_applied: hosted.last_applied,
                snapshot: snapshot::encode(&snap),
            });
        }
        for (key, spilled) in &shard.spilled {
            sessions.push(CheckpointSession {
                tenant: key.tenant,
                session: key.session,
                last_applied: spilled.last_applied,
                snapshot: spilled.bytes.clone(),
            });
        }
        sessions.sort_by_key(|s| (s.tenant, s.session));
        let mut base = journal::stream_header();
        base.extend_from_slice(&journal::encode_record(&JournalRecord::Checkpoint {
            seq_floor,
            sessions,
        }));
        // The fresh journal re-frames the ops still queued: admitted is a
        // durable promise, and compaction must not narrow it.
        let mut fresh = journal::stream_header();
        for e in &shard.queue {
            fresh.extend_from_slice(&journal::encode_ops_record(
                e.key.tenant,
                e.key.session,
                e.seq,
                std::slice::from_ref(&e.op),
            ));
        }
        let queued = shard.queue.len();
        let j = shard.journal.as_mut().expect("journaled (checked above)");
        if let Err(e) = j.store.install_checkpoint(&base, &fresh) {
            j.sealed = true;
            return Err(ServiceError::Journal(e));
        }
        j.unsynced = 0;
        j.since_checkpoint = queued;
        StatCounters::bump(&self.stats.journal_compactions);
        Ok(true)
    }

    /// Rebuilds a journaled service from its durable stores: each shard's
    /// base checkpoint is restored, then the journal suffix is replayed
    /// in `(tenant, seq)` order through the same executor live batches
    /// use — so by the service's determinism contract the recovered
    /// sessions continue **wave-for-wave bit-identical** to a run that
    /// never crashed. A torn final record (partial write at crash) is
    /// truncated and reported in the [`RecoveryReport`]; replay is
    /// idempotent under the per-session applied-seq mark, so records
    /// double-covered by a mid-crash checkpoint are deduplicated.
    ///
    /// Recovery is total and typed: unreadable stores, mid-journal
    /// corruption, and snapshots that no longer decode come back as a
    /// [`RecoveryError`] naming the shard (and offset/session), never a
    /// panic. On success the stores hold a fresh checkpoint of the
    /// recovered state — torn tails are truncated *durably* — and the
    /// returned service journals onward into them.
    ///
    /// # Panics
    /// Panics when `stores` is empty or a limit is zero (operator
    /// configuration, same contract as [`new`](Self::new)).
    pub fn recover(
        comparator: C,
        scheduler: Parallelism,
        limits: ServiceLimits,
        config: JournalConfig,
        mut stores: Vec<Box<dyn JournalStore>>,
    ) -> Result<(Self, RecoveryReport), RecoveryError> {
        assert!(!stores.is_empty(), "need at least one journal store");
        struct Rebuilt<C: ScratchThreeWayComparator + Send + Sync> {
            session: ClusterSession<SharedComparator<C>>,
            last_applied: Option<u64>,
        }
        let comparator = Arc::new(comparator);
        let mut report = RecoveryReport::default();
        let mut sessions: HashMap<SessionKey, Rebuilt<C>> = HashMap::new();
        let mut next_seq = 0u64;
        // Replay discards responses; the scratch counters keep `run_op`
        // honest without polluting the recovered service's stats.
        let scratch = StatCounters::default();
        for (shard, store) in stores.iter_mut().enumerate() {
            let stored = store
                .load()
                .map_err(|error| RecoveryError::Store { shard, error })?;
            // The base is strict: exactly one intact checkpoint record
            // (or empty for a never-checkpointed store). Installs are
            // atomic, so anything else is corruption, not a torn write.
            if !stored.base.is_empty() {
                let scan = journal::scan(&stored.base)
                    .map_err(|error| RecoveryError::Journal { shard, error })?;
                let strict = !scan.torn && scan.records.len() == 1;
                let checkpoint = strict
                    .then(|| scan.records.into_iter().next().expect("one record").1)
                    .and_then(|record| match record {
                        JournalRecord::Checkpoint { seq_floor, sessions } => {
                            Some((seq_floor, sessions))
                        }
                        _ => None,
                    });
                let Some((seq_floor, checkpointed)) = checkpoint else {
                    return Err(RecoveryError::Journal {
                        shard,
                        error: journal::JournalError::Corrupt {
                            offset: 0,
                            what: "base is not exactly one intact checkpoint record",
                        },
                    });
                };
                next_seq = next_seq.max(seq_floor);
                for cp in checkpointed {
                    let key = SessionKey { tenant: cp.tenant, session: cp.session };
                    let typed = |error| RecoveryError::Session {
                        shard,
                        tenant: cp.tenant,
                        session: cp.session,
                        error,
                    };
                    let session =
                        rebuild_session(&comparator, &cp.snapshot).map_err(typed)?;
                    if sessions
                        .insert(key, Rebuilt { session, last_applied: cp.last_applied })
                        .is_some()
                    {
                        return Err(typed(ServiceError::SessionExists {
                            tenant: key.tenant,
                            session: key.session,
                        }));
                    }
                }
            }
            // The journal is torn-tolerant: scan stops at the longest
            // valid prefix when the tail is a partial write.
            let scan = journal::scan(&stored.journal)
                .map_err(|error| RecoveryError::Journal { shard, error })?;
            if scan.torn {
                report.torn_shards += 1;
                report.truncated_bytes += stored.journal.len() - scan.valid_len;
            }
            for (offset, record) in scan.records {
                match record {
                    JournalRecord::Create { tenant, session, spec } => {
                        let key = SessionKey { tenant, session };
                        if sessions.contains_key(&key) {
                            // Already covered by a mid-crash checkpoint.
                            continue;
                        }
                        let typed = |error| RecoveryError::Session {
                            shard,
                            tenant,
                            session,
                            error,
                        };
                        if spec.algorithms == 0 {
                            return Err(typed(ServiceError::NoAlgorithms));
                        }
                        if spec.config.repetitions == 0 {
                            return Err(typed(ServiceError::NoRepetitions));
                        }
                        spec.criterion.try_validate().map_err(|e| typed(e.into()))?;
                        let session_obj = ClusterSession::with_criterion(
                            spec.algorithms,
                            SharedComparator(Arc::clone(&comparator)),
                            spec.config,
                            spec.seed,
                            spec.criterion,
                        );
                        sessions
                            .insert(key, Rebuilt { session: session_obj, last_applied: None });
                    }
                    JournalRecord::Restore { tenant, session, snapshot } => {
                        let key = SessionKey { tenant, session };
                        if sessions.contains_key(&key) {
                            continue;
                        }
                        let session_obj =
                            rebuild_session(&comparator, &snapshot).map_err(|error| {
                                RecoveryError::Session { shard, tenant, session, error }
                            })?;
                        sessions
                            .insert(key, Rebuilt { session: session_obj, last_applied: None });
                    }
                    JournalRecord::Ops { tenant, session, first_seq, ops } => {
                        next_seq = next_seq.max(first_seq + ops.len() as u64);
                        let key = SessionKey { tenant, session };
                        let Some(rebuilt) = sessions.get_mut(&key) else {
                            // The session was closed (or never durable):
                            // the live run answered these with typed
                            // errors and no state change — dropping them
                            // replays exactly that.
                            report.dropped_ops += ops.len();
                            continue;
                        };
                        let total = ops.len();
                        let mut closed_at = None;
                        for (i, op) in ops.into_iter().enumerate() {
                            let seq = first_seq + i as u64;
                            if rebuilt.last_applied.is_some_and(|mark| seq <= mark) {
                                report.deduped_ops += 1;
                                continue;
                            }
                            let result = run_op(&mut rebuilt.session, op, &scratch);
                            rebuilt.last_applied = Some(seq);
                            report.replayed_ops += 1;
                            if matches!(result, Ok(OpOutcome::Closed)) {
                                closed_at = Some(i);
                                break;
                            }
                        }
                        if let Some(i) = closed_at {
                            sessions.remove(&key);
                            // Group ops after a Close answered
                            // `SessionUnknown` live; state-neutral.
                            report.dropped_ops += total - (i + 1);
                        }
                    }
                    JournalRecord::Checkpoint { .. } => {
                        return Err(RecoveryError::Journal {
                            shard,
                            error: journal::JournalError::Corrupt {
                                offset,
                                what: "checkpoint record in a journal stream",
                            },
                        });
                    }
                    // Divergence beacons carry no state; a restarting
                    // leader replays past them (replicas consume them).
                    JournalRecord::Digest { .. } => {}
                }
            }
        }
        // Build the service and install the rebuilt sessions in key order
        // (deterministic spill decisions if the recovered set exceeds
        // residency capacity).
        let service = Self::from_arc(Arc::clone(&comparator), stores.len(), scheduler, limits);
        service.seq.store(next_seq, Ordering::Relaxed);
        report.sessions = sessions.len();
        report.next_seq = next_seq;
        service.stats.record_recovery(
            report.replayed_ops as u64,
            report.torn_shards as u64,
            report.truncated_bytes as u64,
        );
        let mut keys: Vec<SessionKey> = sessions.keys().copied().collect();
        keys.sort();
        for key in keys {
            let rebuilt = sessions.remove(&key).expect("key just listed");
            service
                .install_recovered(key, rebuilt.session, rebuilt.last_applied)
                .map_err(|error| RecoveryError::Session {
                    shard: service.shard_of(key),
                    tenant: key.tenant,
                    session: key.session,
                    error,
                })?;
        }
        for (idx, store) in stores.into_iter().enumerate() {
            service.shard(idx).journal = Some(ShardJournal::new(store, config));
        }
        // A fresh checkpoint everywhere makes the recovered state — and
        // the truncation of any torn tail — durable before the service
        // accepts new work.
        for idx in 0..service.shards.len() {
            service
                .compact_shard(idx)
                .map_err(|error| RecoveryError::Checkpoint { shard: idx, error })?;
        }
        Ok((service, report))
    }

    /// Installs one recovered session (journals are not attached yet, so
    /// this never appends; the post-recovery checkpoint makes it durable).
    pub(crate) fn install_recovered(
        &self,
        key: SessionKey,
        session: ClusterSession<SharedComparator<C>>,
        last_applied: Option<u64>,
    ) -> Result<(), ServiceError> {
        let idx = self.shard_of(key);
        let tick = self.tick();
        let mut guard = self.shard(idx);
        self.insert_locked(&mut guard, idx, key, session, tick)?;
        if let Some(h) = guard.sessions.get_mut(&key) {
            h.last_applied = last_applied;
        }
        Ok(())
    }
}

/// What [`SessionService::recover`] rebuilt, for operators and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sessions alive after recovery (checkpointed + created − closed).
    pub sessions: usize,
    /// Journal ops executed during replay.
    pub replayed_ops: usize,
    /// Journal ops skipped because a checkpoint already covered them
    /// (seq at or below the session's applied mark) — the idempotence
    /// path a crash between checkpoint-install and journal-reset relies
    /// on.
    pub deduped_ops: usize,
    /// Journal ops addressed to sessions that no longer existed (closed
    /// in an earlier record); the live run answered these with typed
    /// errors and no state change.
    pub dropped_ops: usize,
    /// Shards whose journal ended in a torn (partially written) record;
    /// the tail was truncated and the truncation made durable.
    pub torn_shards: usize,
    /// Total torn-tail bytes truncated across all shards.
    pub truncated_bytes: usize,
    /// Where the global seq counter resumes — strictly above every
    /// recovered ticket.
    pub next_seq: u64,
}

/// Validates a journaled `Create` spec and builds the session — the
/// admission-path checks, shared with follower replay so a replica
/// applies exactly what the leader admitted.
pub(crate) fn build_session<C: ScratchThreeWayComparator + Send + Sync>(
    comparator: &Arc<C>,
    spec: &SessionSpec,
) -> Result<ClusterSession<SharedComparator<C>>, ServiceError> {
    if spec.algorithms == 0 {
        return Err(ServiceError::NoAlgorithms);
    }
    if spec.config.repetitions == 0 {
        return Err(ServiceError::NoRepetitions);
    }
    spec.criterion.try_validate()?;
    Ok(ClusterSession::with_criterion(
        spec.algorithms,
        SharedComparator(Arc::clone(comparator)),
        spec.config,
        spec.seed,
        spec.criterion,
    ))
}

/// The divergence-detection checksum of a live session: FNV-1a 64 over
/// its canonical snapshot-codec export (RNG streams excluded) — exactly
/// the bytes a spill or checkpoint writes, so the checksum is bit-exact
/// across replicas, residency states, and processes.
pub(crate) fn session_checksum<C: ScratchThreeWayComparator + Send + Sync>(
    session: &ClusterSession<SharedComparator<C>>,
) -> u64 {
    fnv1a64(&snapshot::encode(&SessionSnapshot {
        config: session.config(),
        seed: session.seed(),
        criterion: session.criterion(),
        state: session.export_state(),
        rng_states: Vec::new(),
    }))
}

/// Decodes checkpoint/restore snapshot bytes back into a live session,
/// with the same typed validation as the admission path.
pub(crate) fn rebuild_session<C: ScratchThreeWayComparator + Send + Sync>(
    comparator: &Arc<C>,
    bytes: &[u8],
) -> Result<ClusterSession<SharedComparator<C>>, ServiceError> {
    let snap = snapshot::decode(bytes)?;
    if snap.state.samples.is_empty() {
        return Err(ServiceError::NoAlgorithms);
    }
    if snap.config.repetitions == 0 {
        return Err(ServiceError::NoRepetitions);
    }
    snap.criterion.try_validate()?;
    ClusterSession::try_restore(
        SharedComparator(Arc::clone(comparator)),
        snap.config,
        snap.seed,
        snap.criterion,
        snap.state,
    )
    .map_err(|what| ServiceError::BadSnapshot(SnapshotError::Malformed(what)))
}

impl<C: ScratchThreeWayComparator + Send + Sync> std::fmt::Debug for SessionService<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionService")
            .field("shards", &self.shards.len())
            .field("sessions", &self.num_sessions())
            .field("limits", &self.limits)
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

/// Executes one session's op group in `(tenant, seq)` order. `session` is
/// `None` when the registry entry was gone at checkout (every op fails
/// typed); it is set to `None` on `Close` so check-in drops the entry.
fn run_session_ops<C: ScratchThreeWayComparator + Send + Sync>(
    key: SessionKey,
    session: &mut Option<ClusterSession<SharedComparator<C>>>,
    ops: Vec<(u64, SessionOp)>,
    stats: &StatCounters,
) -> Vec<OpResponse> {
    let mut responses = Vec::with_capacity(ops.len());
    for (seq, op) in ops {
        let result = match session.as_mut() {
            None => Err(ServiceError::SessionUnknown {
                tenant: key.tenant,
                session: key.session,
            }),
            Some(live) => run_op(live, op, stats),
        };
        let closed = matches!(result, Ok(OpOutcome::Closed));
        responses.push(OpResponse { key, seq, result });
        if closed {
            *session = None;
        }
    }
    responses
}

/// Executes one op against a live session. Never panics on tenant input:
/// index and readiness preconditions are re-checked here (defense in
/// depth — `submit` validated indices already).
pub(crate) fn run_op<C: ScratchThreeWayComparator + Send + Sync>(
    session: &mut ClusterSession<SharedComparator<C>>,
    op: SessionOp,
    stats: &StatCounters,
) -> Result<OpOutcome, ServiceError> {
    let p = session.num_algorithms();
    match op {
        SessionOp::Push { alg, value } => {
            if alg >= p {
                return Err(ServiceError::AlgorithmOutOfRange { alg, p });
            }
            session.push(alg, value)?;
            Ok(OpOutcome::Ingested)
        }
        SessionOp::Extend { alg, values } => {
            if alg >= p {
                return Err(ServiceError::AlgorithmOutOfRange { alg, p });
            }
            // On a non-finite value mid-wave the values before it stay
            // ingested (the `Sample::extend_from_slice` contract) and the
            // error is reported; determinism is unaffected since the
            // ingested prefix is the same on every replay.
            session.extend(alg, &values)?;
            Ok(OpOutcome::Ingested)
        }
        SessionOp::ExtendAll { alg, values } => {
            if alg >= p {
                return Err(ServiceError::AlgorithmOutOfRange { alg, p });
            }
            // All-or-nothing: validation happens before any mutation, so
            // a rejected wave leaves the session (and its comparison
            // caches) exactly as it was — on replay too.
            session.try_extend_all(alg, &values)?;
            Ok(OpOutcome::Ingested)
        }
        SessionOp::Score => {
            let missing = (0..p).filter(|&i| session.sample(i).is_none()).count();
            if missing > 0 {
                return Err(ServiceError::NotReadyToScore { missing });
            }
            StatCounters::bump(&stats.waves);
            let table = session.score().clone();
            Ok(OpOutcome::Scored(WaveOutcome {
                clustering: table.final_assignment(),
                table,
                converged: session.converged(),
                waves: session.waves(),
                stable_run: session.stable_run(),
            }))
        }
        SessionOp::Snapshot => {
            let snap = SessionSnapshot {
                config: session.config(),
                seed: session.seed(),
                criterion: session.criterion(),
                state: session.export_state(),
                rng_states: Vec::new(),
            };
            Ok(OpOutcome::Snapshot(snapshot::encode(&snap)))
        }
        SessionOp::Close => Ok(OpOutcome::Closed),
    }
}
