//! The sparse FEM workload: assemble a Poisson system on a structured 2D
//! mesh and solve it with Conjugate Gradient.
//!
//! The scenario is the classic model problem `−Δu = 1` on the unit square
//! with homogeneous Dirichlet boundary (`u = 0`), discretized with
//! bilinear quadrilateral elements on an `nx x ny` structured mesh:
//!
//! 1. **Element kernels** — each element's 4×4 local stiffness matrix is
//!    accumulated from `BᵀB` products at the four 2×2 Gauss points,
//!    computed through the existing [`KernelEngine`] microkernel (the
//!    same engine the dense workloads run on, so the whole workload is
//!    engine-swappable and **bit-identical** across engines).
//! 2. **Scatter-assembly** — element contributions scatter into a
//!    [`CooMatrix`] in deterministic element order; the duplicate-summing
//!    [`CooMatrix::to_csr`] produces the global sparse system over the
//!    interior (non-boundary) nodes.
//! 3. **Solve** — the SPD system is solved with
//!    [`CsrMatrix::cg_fixed`]: a *fixed* CG iteration count, so the work
//!    performed — and therefore the FLOP/byte price — is a deterministic
//!    function of the mesh, and the simulated task
//!    ([`FemScenario::simulated_task`]) and the real run
//!    ([`FemScenario::run_real_with`]) are priced identically.
//!
//! Where every dense workload in this crate is compute-bound, this one is
//! **bandwidth-bound**: its simulated working set is the solver's actual
//! byte traffic (see [`Task::cg_solve_loop`]), which is what gives the
//! FEM-extended experiment ([`Experiment::table1_fem`]) a genuinely new
//! relative-performance class to cluster.
//!
//! [`Experiment::table1_fem`]: crate::experiment::Experiment::table1_fem

use relperf_linalg::flops;
use relperf_linalg::sparse::{CooMatrix, CsrMatrix, IterSolve, SparseError, SparseResult};
use relperf_linalg::{KernelEngine, Matrix};
use relperf_sim::Task;

/// The FEM assembly/solve scenario: mesh resolution and solver budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FemScenario {
    /// Elements along x.
    pub nx: usize,
    /// Elements along y.
    pub ny: usize,
    /// Fixed Conjugate-Gradient iteration count per solve.
    pub cg_iters: usize,
}

/// Result of one real FEM assembly + solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FemRun {
    /// Number of interior unknowns.
    pub unknowns: usize,
    /// Stored entries of the assembled system.
    pub nnz: usize,
    /// The CG solve (solution vector, iterations run, final residual).
    pub solve: IterSolve,
    /// Nodal-quadrature integral of the solution, `Σᵢ uᵢ · hx·hy` — the
    /// scalar "penalty" this workload hands to the next task in a
    /// Procedure-5-style chain.
    pub integral_u: f64,
}

/// FLOPs of assembling the global system on an `nx x ny` mesh, per the
/// counted element loop: each element visits 4 Gauss points, and each
/// Gauss point costs one `BᵀB` product
/// ([`flops::gemm`]`(4, 2, 4) = 64`), 16 fused scale-accumulates into the
/// 4×4 local stiffness matrix (32 FLOPs), and 4 fused right-hand-side
/// accumulates (8 FLOPs). Shape-function evaluation and index arithmetic
/// are excluded, as address math is in the dense formulas.
pub fn assembly_flops(nx: usize, ny: usize) -> u64 {
    (nx as u64) * (ny as u64) * 4 * (flops::gemm(4, 2, 4) + 2 * 16 + 2 * 4)
}

impl FemScenario {
    /// The scenario the FEM-extended Table-I experiment runs: a 32×32
    /// mesh (961 interior unknowns, 8 281 stored entries) solved with 150
    /// CG iterations (enough for full convergence at this condition
    /// number) — sized so one solve's byte traffic (~37 MB) is far past
    /// the Table-I accelerator's memory knee while the dense tasks stay
    /// under it, by a margin that dominates even a saved framework
    /// context switch.
    pub fn table1() -> Self {
        FemScenario {
            nx: 32,
            ny: 32,
            cg_iters: 150,
        }
    }

    /// Number of interior (non-boundary) nodes — the system dimension.
    pub fn unknowns(&self) -> usize {
        self.nx.saturating_sub(1) * self.ny.saturating_sub(1)
    }

    /// Exact stored-entry count of the assembled system: the 9-point
    /// stencil clipped at the boundary factorizes per axis into
    /// `(3·(nx−1) − 2) · (3·(ny−1) − 2)` (each interior grid line
    /// contributes 3 couplings per node minus the two clipped ends).
    pub fn nnz(&self) -> usize {
        let w = self.nx.saturating_sub(1);
        let h = self.ny.saturating_sub(1);
        if w == 0 || h == 0 {
            return 0;
        }
        (3 * w - 2) * (3 * h - 2)
    }

    /// FLOPs of one full assembly + solve, the price both the simulated
    /// task and the real run carry: [`assembly_flops`] plus
    /// `cg_iters ·` [`flops::cg_iter`].
    pub fn flops_per_iteration(&self) -> u64 {
        assembly_flops(self.nx, self.ny)
            + self.cg_iters as u64 * flops::cg_iter(self.unknowns(), self.nnz())
    }

    /// One CG solve's byte traffic, `cg_iters ·` [`flops::cg_iter_bytes`]
    /// — the number that prices this workload on a roofline device.
    pub fn solve_traffic_bytes(&self) -> u64 {
        self.cg_iters as u64 * flops::cg_iter_bytes(self.unknowns(), self.nnz())
    }

    /// The simulated task description: [`Task::cg_solve_loop`] over the
    /// assembled system's dimensions, with [`assembly_flops`] added to the
    /// per-iteration FLOPs (assembly runs wherever the task is placed).
    pub fn simulated_task(&self, name: &str, iters: usize) -> Task {
        let mut t = Task::cg_solve_loop(name, self.unknowns(), self.nnz(), self.cg_iters, iters);
        t.flops_per_iter += assembly_flops(self.nx, self.ny);
        t
    }

    /// Assembles the global CSR system and load vector through `engine`.
    ///
    /// Every element's 4×4 stiffness block is computed as Gauss-point
    /// `BᵀB` products on the engine and scattered in deterministic element
    /// order, so the assembled system is **bit-identical** across engines
    /// and thread counts.
    pub fn assemble_with(&self, engine: KernelEngine) -> SparseResult<(CsrMatrix, Vec<f64>)> {
        let n = self.unknowns();
        let (nx, ny) = (self.nx, self.ny);
        let hx = 1.0 / nx.max(1) as f64;
        let hy = 1.0 / ny.max(1) as f64;
        let det_j = hx * hy / 4.0;
        // Interior-node index, or None on the Dirichlet boundary.
        let wcols = nx.saturating_sub(1);
        let interior = |gx: usize, gy: usize| -> Option<usize> {
            if gx == 0 || gy == 0 || gx == nx || gy == ny {
                None
            } else {
                Some((gy - 1) * wcols + (gx - 1))
            }
        };

        // 2x2 Gauss rule on [-1, 1]^2, weights 1.
        let g = 1.0 / 3.0_f64.sqrt();
        let gauss = [(-g, -g), (g, -g), (g, g), (-g, g)];

        // Element contributions: ~16 entries per element.
        let mut coo = CooMatrix::with_capacity(n, n, 16 * nx * ny);
        let mut b = vec![0.0; n];
        for ey in 0..ny {
            for ex in 0..nx {
                let mut ke = [[0.0_f64; 4]; 4];
                let mut fe = [0.0_f64; 4];
                for &(xi, eta) in &gauss {
                    // Bilinear shape functions and their physical
                    // gradients on the hx x hy element.
                    let shape = [
                        (1.0 - xi) * (1.0 - eta) / 4.0,
                        (1.0 + xi) * (1.0 - eta) / 4.0,
                        (1.0 + xi) * (1.0 + eta) / 4.0,
                        (1.0 - xi) * (1.0 + eta) / 4.0,
                    ];
                    let dxi = [
                        -(1.0 - eta) / 4.0,
                        (1.0 - eta) / 4.0,
                        (1.0 + eta) / 4.0,
                        -(1.0 + eta) / 4.0,
                    ];
                    let deta = [
                        -(1.0 - xi) / 4.0,
                        -(1.0 + xi) / 4.0,
                        (1.0 + xi) / 4.0,
                        (1.0 - xi) / 4.0,
                    ];
                    let bmat = Matrix::from_fn(2, 4, |r, c| {
                        if r == 0 {
                            2.0 / hx * dxi[c]
                        } else {
                            2.0 / hy * deta[c]
                        }
                    });
                    // The element microkernel: Ke += detJ · BᵀB, with the
                    // product on the (bit-identical) engine and the
                    // accumulation fused per entry.
                    let btb = engine
                        .gemm(&bmat.transpose(), &bmat)
                        .expect("2x4 shapes always conform");
                    for (r, ke_row) in ke.iter_mut().enumerate() {
                        for (c, ke_rc) in ke_row.iter_mut().enumerate() {
                            *ke_rc = relperf_linalg::fmadd(det_j, btb.row(r)[c], *ke_rc);
                        }
                    }
                    // Load vector for f ≡ 1: fe += detJ · N.
                    for (a, fe_a) in fe.iter_mut().enumerate() {
                        *fe_a = relperf_linalg::fmadd(det_j, shape[a], *fe_a);
                    }
                }
                // Scatter: local nodes counterclockwise from (ex, ey).
                let nodes = [
                    (ex, ey),
                    (ex + 1, ey),
                    (ex + 1, ey + 1),
                    (ex, ey + 1),
                ];
                for (a, &(ax, ay)) in nodes.iter().enumerate() {
                    let Some(ia) = interior(ax, ay) else { continue };
                    b[ia] += fe[a];
                    for (c, &(cx, cy)) in nodes.iter().enumerate() {
                        if let Some(ic) = interior(cx, cy) {
                            coo.push(ia, ic, ke[a][c]);
                        }
                    }
                }
            }
        }
        Ok((coo.to_csr(), b))
    }

    /// Runs the real workload — assemble through `engine`, solve with
    /// exactly [`FemScenario::cg_iters`] CG iterations — and returns the
    /// run record. Bit-identical across engines and thread counts; no
    /// randomness enters anywhere.
    pub fn run_real_with(&self, engine: KernelEngine) -> SparseResult<FemRun> {
        let (a, b) = self.assemble_with(engine)?;
        let nnz = a.nnz();
        let solve = a.cg_fixed(&b, self.cg_iters)?;
        let hx = 1.0 / self.nx.max(1) as f64;
        let hy = 1.0 / self.ny.max(1) as f64;
        let integral_u: f64 = solve.x.iter().map(|&u| u * hx * hy).sum();
        Ok(FemRun {
            unknowns: self.unknowns(),
            nnz,
            solve,
            integral_u,
        })
    }
}

/// Runs the FEM workload as one loop of a Procedure-5-style chained code:
/// the previous task's `penalty` seeds the output scalar, which is the
/// run's [`FemRun::integral_u`] plus the carried penalty. The signature
/// mirrors [`crate::mathtask::run_real_with`] so the FEM-extended real
/// code can thread its tasks exactly like the dense-only one.
pub fn run_real_chained(
    scenario: &FemScenario,
    penalty: f64,
    engine: KernelEngine,
) -> Result<f64, SparseError> {
    Ok(penalty + scenario.run_real_with(engine)?.integral_u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relperf_linalg::Parallelism;

    #[test]
    fn counts_match_formulas() {
        let s = FemScenario::table1();
        assert_eq!(s.unknowns(), 31 * 31);
        assert_eq!(s.nnz(), 91 * 91);
        let (a, b) = s.assemble_with(KernelEngine::default()).unwrap();
        assert_eq!(a.shape(), (961, 961));
        assert_eq!(a.nnz(), s.nnz(), "exact stencil count");
        assert_eq!(b.len(), 961);
    }

    #[test]
    fn assembly_flops_counted_loop() {
        // Replay the per-element accounting the formula's doc promises.
        let (nx, ny) = (5, 7);
        let mut count = 0u64;
        for _e in 0..nx * ny {
            for _g in 0..4 {
                count += flops::gemm(4, 2, 4); // BᵀB on the engine
                count += 2 * 16; // 16 fused scale-accumulates into Ke
                count += 2 * 4; // 4 fused load-vector accumulates
            }
        }
        assert_eq!(count, assembly_flops(nx, ny));
    }

    #[test]
    fn interior_row_is_the_nine_point_stencil() {
        // The assembled operator on a uniform mesh is the classic bilinear
        // 9-point stencil: 8/3 on the diagonal, −1/3 on all 8 neighbours,
        // zero row sum — independent of h (2D Laplacian scale invariance).
        let s = FemScenario {
            nx: 6,
            ny: 6,
            cg_iters: 1,
        };
        let (a, b) = s.assemble_with(KernelEngine::default()).unwrap();
        let w = 5; // interior grid is 5x5
        let center = 2 * w + 2; // node (3, 3)
        let (cols, vals) = a.row_entries(center);
        assert_eq!(cols.len(), 9);
        let mut sum = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            sum += v;
            if j == center {
                assert!((v - 8.0 / 3.0).abs() < 1e-12, "diag {v}");
            } else {
                assert!((v + 1.0 / 3.0).abs() < 1e-12, "neighbour {v}");
            }
        }
        assert!(sum.abs() < 1e-12, "row sum {sum}");
        // Load vector: hx·hy per fully-interior node.
        assert!((b[center] - (1.0 / 36.0)).abs() < 1e-15);
    }

    #[test]
    fn assembly_and_run_bit_identical_across_engines() {
        let s = FemScenario {
            nx: 9,
            ny: 7,
            cg_iters: 12,
        };
        let reference = s.run_real_with(KernelEngine::Reference).unwrap();
        for engine in [
            KernelEngine::Blocked,
            KernelEngine::Parallel(Parallelism::with_threads(3)),
        ] {
            let run = s.run_real_with(engine).unwrap();
            assert_eq!(run, reference, "{}", engine.label());
        }
        assert_eq!(reference.solve.iterations, 12);
    }

    #[test]
    fn converged_solution_matches_poisson_physics() {
        // −Δu = 1 on the unit square, u = 0 on the boundary: the exact
        // peak is u(½, ½) ≈ 0.07367. A 16×16 mesh converged to 1e-10
        // must land within discretization error of it.
        let s = FemScenario {
            nx: 16,
            ny: 16,
            cg_iters: 0,
        };
        let (a, b) = s.assemble_with(KernelEngine::default()).unwrap();
        let solve = a.cg(&b, 2_000, 1e-10).unwrap();
        let center = (15 / 2) * 15 + 15 / 2; // node (8, 8) in the 15x15 grid
        let u_center = solve.x[center];
        assert!(
            (0.072..0.076).contains(&u_center),
            "center value {u_center}"
        );
        // And the solution is symmetric under x ↔ y (within rounding).
        let at = |gx: usize, gy: usize| solve.x[(gy - 1) * 15 + (gx - 1)];
        assert!((at(3, 8) - at(8, 3)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_meshes_are_empty_not_wrong() {
        for (nx, ny) in [(1, 1), (1, 5), (5, 1)] {
            let s = FemScenario {
                nx,
                ny,
                cg_iters: 3,
            };
            assert_eq!(s.unknowns(), 0);
            assert_eq!(s.nnz(), 0);
            let run = s.run_real_with(KernelEngine::default()).unwrap();
            assert_eq!(run.unknowns, 0);
            assert_eq!(run.integral_u, 0.0);
        }
        // 2x2: a single interior node, diagonal-only 1x1 system.
        let s = FemScenario {
            nx: 2,
            ny: 2,
            cg_iters: 5,
        };
        assert_eq!(s.unknowns(), 1);
        assert_eq!(s.nnz(), 1);
        let run = s.run_real_with(KernelEngine::default()).unwrap();
        assert!(run.solve.x[0] > 0.0);
    }

    #[test]
    fn simulated_task_prices_match_scenario() {
        let s = FemScenario::table1();
        let t = s.simulated_task("L4", 3);
        assert_eq!(t.iterations, 3);
        assert_eq!(t.flops_per_iter, s.flops_per_iteration());
        assert_eq!(t.working_set_bytes, s.solve_traffic_bytes());
        assert_eq!(
            t.offload_bytes_per_iter,
            flops::csr_bytes(961, 8281) + 8 * 961
        );
        // The workload is sized past the Table-I accelerator's knee.
        assert!(t.working_set_bytes > 10_000_000);
    }

    #[test]
    fn chained_run_threads_the_penalty() {
        let s = FemScenario {
            nx: 4,
            ny: 4,
            cg_iters: 8,
        };
        let base = run_real_chained(&s, 0.0, KernelEngine::default()).unwrap();
        let chained = run_real_chained(&s, 2.5, KernelEngine::default()).unwrap();
        assert!((chained - base - 2.5).abs() < 1e-12);
    }
}
