//! Property-based tests of the sparse kernels against the dense oracles.
//!
//! The contract under test (see the `relperf_linalg::sparse` module docs):
//! CSR round-trips preserve dense values exactly, SpMV and the sparse
//! triangular solves are *bit-identical* to the matching dense fused
//! loops with structural zeros skipped, and CG on SPD systems reaches the
//! dense Cholesky solution within a pinned tolerance — for arbitrary
//! patterns, including empty rows, 1×1, and diagonal-only shapes.

use proptest::prelude::*;
use rand::prelude::*;
use relperf_linalg::cholesky::Cholesky;
use relperf_linalg::random::{random_lower_triangular, random_spd, random_vector};
use relperf_linalg::sparse::{CooMatrix, CsrMatrix};
use relperf_linalg::triangular::{solve_lower, solve_upper};
use relperf_linalg::{fmadd, Matrix, Parallelism};

/// Random COO with the given fill probability, duplicate triplets
/// included (each position is pushed 1–3 times with values that sum to
/// the intended entry) so `to_csr`'s duplicate summing is always on the
/// tested path.
fn random_coo(rng: &mut StdRng, rows: usize, cols: usize, fill: f64) -> (CooMatrix, Matrix) {
    let mut coo = CooMatrix::new(rows, cols);
    let mut dense = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            if rng.random_range(0.0..1.0) < fill {
                let v: f64 = rng.random_range(-1.0..1.0);
                let copies = rng.random_range(1usize..4);
                // Split v across `copies` duplicate pushes summing to v
                // exactly: k-1 halves plus the remainder.
                let mut rest = v;
                for _ in 1..copies {
                    let part = rest / 2.0;
                    coo.push(i, j, part);
                    rest -= part;
                }
                coo.push(i, j, rest);
                let mut acc = 0.0;
                // Replay the same summation order to land on the exact
                // floating-point sum the CSR entry will hold.
                let mut rest2 = v;
                for _ in 1..copies {
                    let part = rest2 / 2.0;
                    acc += part;
                    rest2 -= part;
                }
                acc += rest2;
                dense.row_mut(i)[j] = acc;
            }
        }
    }
    (coo, dense)
}

/// Dense per-row fused mat-vec — the bit-identity oracle for SpMV.
fn dense_fmadd_gemv(a: &Matrix, x: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| {
            let mut s = 0.0;
            for (j, &v) in a.row(i).iter().enumerate() {
                s = fmadd(v, x[j], s);
            }
            s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn coo_csr_dense_round_trip(seed in 0u64..1_000, rows in 0usize..30, cols in 0usize..30, fill in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (coo, dense) = random_coo(&mut rng, rows, cols, fill);
        let csr = coo.to_csr();
        // Duplicate-summed CSR densifies to the insertion-order dense sum.
        prop_assert_eq!(csr.to_dense(), dense.clone());
        // And from_dense(to_dense) preserves values and drops only zeros.
        let back = CsrMatrix::from_dense(&csr.to_dense());
        prop_assert_eq!(back.to_dense(), dense);
    }

    #[test]
    fn spmv_bit_identical_to_dense_fused_loop(seed in 0u64..1_000, rows in 0usize..40, cols in 0usize..40, fill in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (coo, _) = random_coo(&mut rng, rows, cols, fill);
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        let x = random_vector(&mut rng, cols);
        let y = csr.spmv(&x).unwrap();
        prop_assert_eq!(y.clone(), dense_fmadd_gemv(&dense, &x));
        // Row-parallel SpMV is bit-identical for any thread count.
        let threads = (seed % 7) as usize;
        prop_assert_eq!(csr.spmv_with(&x, Parallelism::with_threads(threads)).unwrap(), y);
    }

    #[test]
    fn sparse_triangular_bit_identical_to_dense(seed in 0u64..1_000, n in 1usize..40, drop in 0.0f64..1.0) {
        // Sparsify a well-conditioned dense triangular factor (keep the
        // diagonal), then require bit-equality with the dense solves.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l = random_lower_triangular(&mut rng, n);
        for i in 0..n {
            for j in 0..i {
                if rng.random_range(0.0..1.0) < drop {
                    l.row_mut(i)[j] = 0.0;
                }
            }
        }
        let b = random_vector(&mut rng, n);
        let lcsr = CsrMatrix::from_dense(&l);
        prop_assert_eq!(lcsr.solve_lower(&b).unwrap(), solve_lower(&l, &b).unwrap());
        let u = l.transpose();
        let ucsr = CsrMatrix::from_dense(&u);
        prop_assert_eq!(ucsr.solve_upper(&b).unwrap(), solve_upper(&u, &b).unwrap());
    }

    #[test]
    fn cg_reaches_cholesky_solution(seed in 0u64..1_000, n in 1usize..28) {
        // Dense-SPD systems are tiny and well-conditioned (MᵀM + εI), so
        // CG must land on the direct Cholesky solution within a pinned
        // mixed abs/rel tolerance.
        let mut rng = StdRng::seed_from_u64(seed);
        let spd = random_spd(&mut rng, n);
        let b = random_vector(&mut rng, n);
        let csr = CsrMatrix::from_dense(&spd);
        let cg = csr.cg(&b, 20 * n + 20, 1e-12).unwrap();
        let direct = Cholesky::factor(&spd).unwrap().solve(&b).unwrap();
        for (c, d) in cg.x.iter().zip(&direct) {
            prop_assert!(relperf_linalg::approx_eq(*c, *d, 1e-6), "cg {} vs cholesky {}", c, d);
        }
    }

    #[test]
    fn diagonal_only_systems_solve_exactly(seed in 0u64..1_000, n in 1usize..30) {
        // Degenerate pattern: nothing off the diagonal. Every solver must
        // produce the exact per-element quotient.
        let mut rng = StdRng::seed_from_u64(seed);
        let diag: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..2.0)).collect();
        let b = random_vector(&mut rng, n);
        let csr = CsrMatrix::from_dense(&Matrix::from_diag(&diag));
        let expect: Vec<f64> = b.iter().zip(&diag).map(|(bi, di)| bi / di).collect();
        prop_assert_eq!(csr.solve_lower(&b).unwrap(), expect.clone());
        prop_assert_eq!(csr.solve_upper(&b).unwrap(), expect.clone());
        let jac = csr.jacobi(&b, 2, 0.0).unwrap();
        prop_assert_eq!(jac.x, expect);
    }

    #[test]
    fn empty_rows_contribute_exact_zeros(seed in 0u64..1_000, rows in 1usize..30, cols in 1usize..30) {
        // Pattern with deliberately empty rows: SpMV must emit +0.0 there.
        let mut rng = StdRng::seed_from_u64(seed);
        let (coo, _) = random_coo(&mut rng, rows, cols, 0.3);
        let mut csr = coo.to_csr();
        // Rebuild with every even row wiped.
        let dense = csr.to_dense();
        let mut wiped = Matrix::zeros(rows, cols);
        for i in (1..rows).step_by(2) {
            wiped.row_mut(i).copy_from_slice(dense.row(i));
        }
        csr = CsrMatrix::from_dense(&wiped);
        let x = random_vector(&mut rng, cols);
        let y = csr.spmv(&x).unwrap();
        for i in (0..rows).step_by(2) {
            prop_assert!(y[i] == 0.0 && y[i].is_sign_positive(), "row {} -> {:?}", i, y[i]);
        }
        prop_assert_eq!(y, dense_fmadd_gemv(&wiped, &x));
    }
}
