//! End-to-end integration tests of the full pipeline through the facade
//! crate: simulate → measure → compare → sort → cluster → decide.

use rand::prelude::*;
use relative_performance::prelude::*;

#[test]
fn paper_pipeline_fig1() {
    let experiment = Experiment::fig1();
    let mut rng = StdRng::seed_from_u64(1);
    let measured = measure_all(&experiment, 100, &mut rng);
    assert_eq!(measured.len(), 4);

    let comparator = BootstrapComparator::new(2);
    let table = cluster_measurements(
        &measured,
        &comparator,
        ClusterConfig::with_repetitions(50),
        &mut rng,
    );
    let clustering = table.final_assignment();

    // AD is the best class; DD and DA share a class.
    let idx = |l: &str| measured.iter().position(|m| m.label == l).unwrap();
    assert_eq!(clustering.assignment(idx("AD")).rank, 1);
    assert_eq!(
        clustering.assignment(idx("DD")).rank,
        clustering.assignment(idx("DA")).rank
    );
    assert!(clustering.assignment(idx("AA")).rank < clustering.assignment(idx("DD")).rank);
}

#[test]
fn paper_pipeline_table1_with_decisions() {
    let experiment = Experiment::table1(10);
    let mut rng = StdRng::seed_from_u64(3);
    let measured = measure_all(&experiment, 30, &mut rng);
    let comparator = BootstrapComparator::new(4);
    let table = cluster_measurements(
        &measured,
        &comparator,
        ClusterConfig::with_repetitions(60),
        &mut rng,
    );
    let clustering = table.final_assignment();
    let profs = profiles(&measured, &clustering);

    // DDA leads; a frugal decision model must still choose the free DDD.
    let dda = profs.iter().find(|p| p.label == "DDA").unwrap();
    assert_eq!(dda.rank, 1);
    let frugal = CostSpeedModel {
        time_weight: 1.0,
        cost_weight: 50.0,
        confidence_weight: 0.0,
    };
    let pick = &profs[frugal.select(&profs).unwrap()];
    assert_eq!(pick.label, "DDD");
    assert_eq!(pick.operating_cost, 0.0);

    // The energy controller must cycle between DDD and DAA.
    let high = profs.iter().find(|p| p.label == "DDD").unwrap();
    let low = profs.iter().find(|p| p.label == "DAA").unwrap();
    // DAA cuts device FLOPs by >10x; device *energy* falls less because
    // the device still draws idle power while the accelerator computes.
    assert!(low.device_flops < high.device_flops / 10);
    assert!(low.device_energy_j < 0.8 * high.device_energy_j);
    let ctrl = EnergyBudgetController {
        high_watermark_j: 4.0 * high.device_energy_j,
        low_watermark_j: 1.5 * high.device_energy_j,
        dissipation_j: 0.5 * high.device_energy_j,
    };
    let trace = ctrl.simulate(high, low, 60);
    assert!(trace.iter().any(|s| s.mode == Mode::LowEnergy));
    assert!(trace.iter().filter(|s| s.switched).count() >= 2);
}

#[test]
fn sort_trace_matches_paper_walkthrough() {
    // The Fig. 2 walkthrough through the facade's sort API.
    use relative_performance::core::sort::{sort_with_trace, SortState};
    let class = |x: usize| match x {
        3 => 0,
        1 => 1,
        _ => 2,
    };
    let cmp = |a: usize, b: usize| match class(a).cmp(&class(b)) {
        std::cmp::Ordering::Less => Outcome::Better,
        std::cmp::Ordering::Greater => Outcome::Worse,
        std::cmp::Ordering::Equal => Outcome::Equivalent,
    };
    let (final_state, steps) = sort_with_trace(SortState::initial(4), cmp);
    assert_eq!(final_state.sequence, vec![3, 1, 0, 2]);
    assert_eq!(final_state.ranks, vec![1, 2, 3, 3]);
    assert_eq!(steps.len(), 6);
}

#[test]
fn clustering_survives_measurement_replacement() {
    // Re-measuring (fresh noise, same platform) must preserve the final
    // clustering structure at N=500 — the stability the paper attributes
    // to large N.
    use relative_performance::core::similarity::adjusted_rand_index;
    let experiment = Experiment::fig1();
    let comparator = BootstrapComparator::new(5);

    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let measured = measure_all(&experiment, 500, &mut rng);
        cluster_measurements(
            &measured,
            &comparator,
            ClusterConfig::with_repetitions(30),
            &mut rng,
        )
        .final_assignment()
    };
    let c1 = run(10);
    let c2 = run(20);
    let ari = adjusted_rand_index(&c1, &c2);
    assert!(ari > 0.99, "N=500 clusterings should match across campaigns, ARI = {ari}");
}

#[test]
fn triplets_from_paper_clusters_feed_model_training() {
    use relative_performance::core::triplet::{enumerate_triplets, sample_triplets};
    let experiment = Experiment::table1(10);
    let mut rng = StdRng::seed_from_u64(6);
    let measured = measure_all(&experiment, 30, &mut rng);
    let comparator = BootstrapComparator::new(7);
    let clustering = cluster_measurements(
        &measured,
        &comparator,
        ClusterConfig::with_repetitions(50),
        &mut rng,
    )
    .final_assignment();

    // Table I has multi-member classes, so triplets must exist.
    let all = enumerate_triplets(&clustering);
    assert!(!all.is_empty(), "expected triplets from the Table I clustering");
    let sampled = sample_triplets(&clustering, 16, &mut rng).unwrap();
    assert_eq!(sampled.len(), 16);
    for t in sampled {
        assert!(clustering.assignment(t.negative).rank > clustering.assignment(t.anchor).rank);
    }
}

#[test]
fn simulated_flops_match_linalg_accounting() {
    // The simulator's task descriptions carry exactly the FLOPs that the
    // real kernels would execute (per the flops module), keeping the
    // energy model honest.
    use relative_performance::linalg::flops;
    let experiment = Experiment::table1(7);
    let ddd = &experiment.placements[0].1;
    let rec = experiment.platform.execute_noiseless(&experiment.tasks, ddd);
    let expected: u64 = [50usize, 75, 300]
        .iter()
        .map(|&s| flops::rls_task(s, 7))
        .sum();
    assert_eq!(rec.device_flops, expected);
    assert_eq!(rec.accel_flops, 0);
}
