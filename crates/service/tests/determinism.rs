//! The service's headline contract: for ANY cross-tenant request
//! interleaving, shard count, scheduler thread count, and batch cut
//! points, every session's served results are bit-identical to driving a
//! private `ClusterSession` with the same op sequence.

use proptest::prelude::*;
use rand::prelude::*;
use relperf_core::cluster::{ClusterConfig, PairSchedule, Parallelism, ScoreTable};
use relperf_core::session::{ClusterSession, ConvergenceCriterion};
use relperf_measure::compare::{BootstrapComparator, BootstrapConfig};
use relperf_service::prelude::*;
use relperf_service::service::SessionService;

fn comparator() -> BootstrapComparator {
    BootstrapComparator::with_config(
        5,
        BootstrapConfig {
            reps: 10,
            ..Default::default()
        },
    )
}

fn config(threads: usize, schedule: PairSchedule) -> ClusterConfig {
    ClusterConfig {
        repetitions: 15,
        parallelism: Parallelism::with_threads(threads),
        schedule,
    }
}

fn noisy(center: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| center + rng.random_range(-0.2..0.2)).collect()
}

/// One tenant's scripted session: per-wave measurement vectors for `p`
/// algorithms, scored after each wave.
struct Script {
    tenant: u64,
    session: u64,
    p: usize,
    seed: u64,
    waves: Vec<Vec<Vec<f64>>>,
}

fn scripts(num_tenants: usize, waves: usize, value_seed: u64) -> Vec<Script> {
    (0..num_tenants as u64)
        .map(|tenant| {
            let p = 2 + (tenant as usize % 3);
            Script {
                tenant,
                session: 100 + tenant,
                p,
                seed: 7 + tenant,
                waves: (0..waves)
                    .map(|w| {
                        (0..p)
                            .map(|alg| {
                                noisy(
                                    1.0 + alg as f64,
                                    4,
                                    value_seed ^ (tenant << 20) ^ ((w as u64) << 10) ^ alg as u64,
                                )
                            })
                            .collect()
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Drives each script through a private `ClusterSession` — the reference
/// the service must match bit for bit.
fn direct_tables(scripts: &[Script], cfg: ClusterConfig) -> Vec<Vec<ScoreTable>> {
    let cmp = comparator();
    scripts
        .iter()
        .map(|s| {
            let mut session = ClusterSession::new(s.p, &cmp, cfg, s.seed);
            s.waves
                .iter()
                .map(|wave| {
                    for (alg, values) in wave.iter().enumerate() {
                        session.extend(alg, values).unwrap();
                    }
                    session.score().clone()
                })
                .collect()
        })
        .collect()
}

/// Drives all scripts through one service, interleaving the tenants'
/// submissions according to `order` (a shuffled schedule of (script,
/// wave) pairs) and cutting scheduler batches every `batch_every` waves.
fn service_tables(
    scripts: &[Script],
    cfg: ClusterConfig,
    shards: usize,
    scheduler_threads: usize,
    order: &[usize],
    batch_every: usize,
) -> Vec<Vec<ScoreTable>> {
    let service = SessionService::new(
        comparator(),
        shards,
        Parallelism::with_threads(scheduler_threads),
        ServiceLimits::default(),
    );
    for s in scripts {
        service
            .create_session(
                s.tenant,
                s.session,
                SessionSpec {
                    algorithms: s.p,
                    config: cfg,
                    seed: s.seed,
                    criterion: ConvergenceCriterion::default(),
                },
            )
            .unwrap();
    }
    let mut tables: Vec<Vec<ScoreTable>> = scripts.iter().map(|_| Vec::new()).collect();
    let mut score_seqs: Vec<Vec<u64>> = scripts.iter().map(|_| Vec::new()).collect();
    let mut next_wave: Vec<usize> = vec![0; scripts.len()];
    let mut drain = |score_seqs: &mut Vec<Vec<u64>>| {
        for response in service.run_batch() {
            let result = response.result.expect("scripted ops never fail");
            if let OpOutcome::Scored(wave) = result {
                let si = scripts
                    .iter()
                    .position(|s| s.tenant == response.key.tenant)
                    .unwrap();
                assert!(
                    score_seqs[si].contains(&response.seq),
                    "unexpected scored response"
                );
                tables[si].push(wave.table);
            }
        }
    };
    for (submitted, &si) in order.iter().enumerate() {
        let s = &scripts[si];
        let wave = &s.waves[next_wave[si]];
        next_wave[si] += 1;
        for (alg, values) in wave.iter().enumerate() {
            service
                .submit(
                    s.tenant,
                    s.session,
                    SessionOp::Extend {
                        alg,
                        values: values.clone(),
                    },
                )
                .unwrap();
        }
        let seq = service.submit(s.tenant, s.session, SessionOp::Score).unwrap();
        score_seqs[si].push(seq);
        if (submitted + 1) % batch_every == 0 {
            drain(&mut score_seqs);
        }
    }
    drain(&mut score_seqs);
    tables
}

#[test]
fn interleaved_multi_tenant_service_matches_direct_sessions() {
    let scripts = scripts(4, 3, 0xA11CE);
    for schedule in [PairSchedule::OnDemand, PairSchedule::Batched] {
        let cfg = config(2, schedule);
        let reference = direct_tables(&scripts, cfg);
        // Round-robin and blocked interleavings, several shard/thread
        // combinations, batches cut at different points.
        let round_robin: Vec<usize> = (0..3).flat_map(|_| 0..scripts.len()).collect();
        let blocked: Vec<usize> = (0..scripts.len()).flat_map(|s| [s; 3]).collect();
        for order in [round_robin, blocked] {
            for (shards, threads, batch_every) in
                [(1, 1, 1), (4, 3, 2), (16, 0, 5), (3, 2, 100)]
            {
                let got = service_tables(&scripts, cfg, shards, threads, &order, batch_every);
                assert_eq!(
                    got, reference,
                    "schedule={schedule:?} shards={shards} threads={threads} batch_every={batch_every}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any shuffled interleaving of tenants' wave submissions — the
    /// service result never depends on who submitted first, how shards
    /// split the keys, how many threads drained the batch, or where the
    /// batch boundaries fell.
    #[test]
    fn any_shuffled_interleaving_is_bit_identical(
        shuffle_seed in 0u64..1_000,
        shards in 1usize..9,
        threads in 1usize..5,
        batch_every in 1usize..8,
    ) {
        let scripts = scripts(3, 2, 0xBEE);
        let cfg = config(1, PairSchedule::OnDemand);
        let reference = direct_tables(&scripts, cfg);
        // A random interleaving: each script appears `waves` times, order
        // shuffled by the seed.
        let mut order: Vec<usize> = (0..scripts.len()).flat_map(|s| [s; 2]).collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        order.shuffle(&mut rng);
        let got = service_tables(&scripts, cfg, shards, threads, &order, batch_every);
        prop_assert_eq!(got, reference);
    }
}

#[test]
fn shard_count_does_not_change_results() {
    let scripts = scripts(5, 2, 0xF00D);
    let cfg = config(0, PairSchedule::Batched);
    let order: Vec<usize> = (0..2).flat_map(|_| 0..scripts.len()).collect();
    let reference = service_tables(&scripts, cfg, 1, 1, &order, 1);
    for shards in [2, 7, 64] {
        let got = service_tables(&scripts, cfg, shards, 3, &order, 3);
        assert_eq!(got, reference, "shards={shards}");
    }
    assert_eq!(reference, direct_tables(&scripts, cfg));
}

#[test]
fn batch_boundaries_do_not_change_results() {
    // All ops in one giant batch vs. one batch per op.
    let scripts = scripts(3, 3, 0xCAFE);
    let cfg = config(2, PairSchedule::OnDemand);
    let order: Vec<usize> = (0..3).flat_map(|_| 0..scripts.len()).collect();
    let one_batch = service_tables(&scripts, cfg, 4, 2, &order, usize::MAX);
    let per_op = service_tables(&scripts, cfg, 4, 2, &order, 1);
    assert_eq!(one_batch, per_op);
    assert_eq!(one_batch, direct_tables(&scripts, cfg));
}
